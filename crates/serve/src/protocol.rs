//! The serving line protocol.
//!
//! One request per line, whitespace-separated, first word the command:
//!
//! ```text
//! ESTIMATE <platform> <pmc>=<count> [<pmc>=<count> ...]
//! ESTIMATE-APP <platform> <appspec>
//! TRAIN <platform> <pmc,pmc,...> <appspec,appspec,...>
//! MODELS
//! STATS
//! QUIT
//! ```
//!
//! Replies are single lines — `OK key=value ...` or `ERR <message>` —
//! except `MODELS`, which answers `OK count=<n>` followed by `n` listing
//! lines (the client knows how many to read). Floats use Rust's default
//! shortest-round-trip formatting, so a reply parses back to the exact
//! served value.

use crate::engine::Estimate;
use crate::service::ServiceStats;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Estimate from named PMC counts.
    Estimate {
        /// Target platform.
        platform: String,
        /// `(pmc name, count)` pairs, in the order given.
        counts: Vec<(String, f64)>,
    },
    /// Estimate a whole application by spec.
    EstimateApp {
        /// Target platform.
        platform: String,
        /// Workload spec (e.g. `dgemm:12000` or `dgemm:9000;fft:23000`).
        app: String,
    },
    /// Train and register an online model.
    Train {
        /// Target platform.
        platform: String,
        /// PMC names, comma-separated on the wire.
        pmcs: Vec<String>,
        /// Training workload specs, comma-separated on the wire.
        apps: Vec<String>,
    },
    /// List registered models.
    Models,
    /// Report service counters.
    Stats,
    /// Close the connection.
    Quit,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let command = words.next().ok_or("empty request")?.to_ascii_uppercase();
        let rest: Vec<&str> = words.collect();
        match command.as_str() {
            "ESTIMATE" => {
                let (platform, pairs) = rest.split_first().ok_or("ESTIMATE needs a platform")?;
                if pairs.is_empty() {
                    return Err("ESTIMATE needs at least one pmc=count pair".to_string());
                }
                let counts = pairs
                    .iter()
                    .map(|pair| {
                        let (name, value) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("expected pmc=count, found {pair:?}"))?;
                        let count = value
                            .parse::<f64>()
                            .map_err(|_| format!("bad count {value:?} for {name}"))?;
                        Ok((name.to_string(), count))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Request::Estimate {
                    platform: (*platform).to_string(),
                    counts,
                })
            }
            "ESTIMATE-APP" => match rest.as_slice() {
                [platform, app] => Ok(Request::EstimateApp {
                    platform: (*platform).to_string(),
                    app: (*app).to_string(),
                }),
                _ => Err("usage: ESTIMATE-APP <platform> <appspec>".to_string()),
            },
            "TRAIN" => match rest.as_slice() {
                [platform, pmcs, apps] => Ok(Request::Train {
                    platform: (*platform).to_string(),
                    pmcs: split_list(pmcs, "PMC list")?,
                    apps: split_list(apps, "workload list")?,
                }),
                _ => Err("usage: TRAIN <platform> <pmc,pmc,...> <appspec,appspec,...>".to_string()),
            },
            "MODELS" if rest.is_empty() => Ok(Request::Models),
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "QUIT" if rest.is_empty() => Ok(Request::Quit),
            "MODELS" | "STATS" | "QUIT" => Err(format!("{command} takes no arguments")),
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// Encode back to one request line (client side).
    pub fn to_line(&self) -> String {
        match self {
            Request::Estimate { platform, counts } => {
                let pairs: Vec<String> = counts.iter().map(|(n, v)| format!("{n}={v}")).collect();
                format!("ESTIMATE {platform} {}", pairs.join(" "))
            }
            Request::EstimateApp { platform, app } => format!("ESTIMATE-APP {platform} {app}"),
            Request::Train {
                platform,
                pmcs,
                apps,
            } => {
                format!("TRAIN {platform} {} {}", pmcs.join(","), apps.join(","))
            }
            Request::Models => "MODELS".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Quit => "QUIT".to_string(),
        }
    }
}

fn split_list(word: &str, what: &str) -> Result<Vec<String>, String> {
    let items: Vec<String> = word
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if items.is_empty() {
        return Err(format!("empty {what}"));
    }
    Ok(items)
}

/// `OK` reply for an estimate.
pub fn ok_estimate(estimate: &Estimate) -> String {
    format!(
        "OK joules={} ci={} family={} version={}",
        estimate.joules, estimate.ci_half_width, estimate.family, estimate.version
    )
}

/// `OK` reply for STATS.
pub fn ok_stats(stats: &ServiceStats) -> String {
    format!(
        "OK served={} errors={} cache-hits={} cache-misses={} cache-entries={} models={} workers={}",
        stats.served,
        stats.errors,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_entries,
        stats.models,
        stats.workers
    )
}

/// `ERR` reply. Newlines are flattened so the reply stays one line.
pub fn err(message: &str) -> String {
    format!("ERR {}", message.replace(['\r', '\n'], " "))
}

/// Parse an estimate reply back into an [`Estimate`] (client side).
///
/// # Errors
///
/// Returns the server's `ERR` message, or a description of a malformed
/// reply.
pub fn parse_estimate_reply(line: &str) -> Result<Estimate, String> {
    let fields = parse_ok_fields(line)?;
    let get = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("reply missing {key}: {line:?}"))
    };
    Ok(Estimate {
        joules: get("joules")?
            .parse()
            .map_err(|_| "bad joules".to_string())?,
        ci_half_width: get("ci")?.parse().map_err(|_| "bad ci".to_string())?,
        family: get("family")?.to_string(),
        version: get("version")?
            .parse()
            .map_err(|_| "bad version".to_string())?,
    })
}

/// Split an `OK key=value ...` reply into its fields (client side).
///
/// # Errors
///
/// Returns the server's `ERR` message, or a description of a malformed
/// reply.
pub fn parse_ok_fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let line = line.trim();
    if let Some(message) = line.strip_prefix("ERR ") {
        return Err(message.to_string());
    }
    let rest = line
        .strip_prefix("OK")
        .ok_or_else(|| format!("malformed reply {line:?}"))?;
    rest.split_whitespace()
        .map(|pair| {
            pair.split_once('=')
                .ok_or_else(|| format!("malformed field {pair:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::Estimate {
                platform: "skylake".to_string(),
                counts: vec![
                    ("UOPS_EXECUTED_CORE".to_string(), 1.25e11),
                    ("MEM_INST_RETIRED_ALL_STORES".to_string(), 4.0e9),
                ],
            },
            Request::EstimateApp {
                platform: "haswell".to_string(),
                app: "dgemm:9000;fft:23000".to_string(),
            },
            Request::Train {
                platform: "skylake".to_string(),
                pmcs: vec!["A".to_string(), "B".to_string()],
                apps: vec!["dgemm:9000".to_string(), "fft:23000".to_string()],
            },
            Request::Models,
            Request::Stats,
            Request::Quit,
        ];
        for request in requests {
            assert_eq!(Request::parse(&request.to_line()).unwrap(), request);
        }
    }

    #[test]
    fn parse_is_case_insensitive_on_the_command_only() {
        let parsed = Request::parse("estimate skylake Pmc_A=3.5").unwrap();
        assert_eq!(
            parsed,
            Request::Estimate {
                platform: "skylake".to_string(),
                counts: vec![("Pmc_A".to_string(), 3.5)],
            }
        );
    }

    #[test]
    fn malformed_requests_are_described() {
        for bad in [
            "",
            "FROBNICATE",
            "ESTIMATE",
            "ESTIMATE skylake",
            "ESTIMATE skylake UOPS",
            "ESTIMATE skylake UOPS=abc",
            "ESTIMATE-APP skylake",
            "TRAIN skylake A,B",
            "TRAIN skylake , dgemm:9000",
            "STATS now",
            "QUIT now",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn estimate_replies_round_trip_exactly() {
        let estimate = Estimate {
            joules: 123.456789012345,
            ci_half_width: 0.25,
            family: "online".to_string(),
            version: 3,
        };
        let parsed = parse_estimate_reply(&ok_estimate(&estimate)).unwrap();
        assert_eq!(parsed, estimate);
    }

    #[test]
    fn err_replies_surface_the_message() {
        let reply = err("no model: nothing\nregistered");
        assert_eq!(reply, "ERR no model: nothing registered");
        assert_eq!(
            parse_estimate_reply(&reply).unwrap_err(),
            "no model: nothing registered"
        );
        assert!(parse_estimate_reply("gibberish").is_err());
    }

    #[test]
    fn stats_replies_parse_as_fields() {
        let stats = ServiceStats {
            served: 10,
            errors: 1,
            cache_hits: 5,
            cache_misses: 2,
            cache_entries: 2,
            models: 3,
            workers: 4,
        };
        let reply = ok_stats(&stats);
        let fields = parse_ok_fields(&reply).unwrap();
        assert_eq!(fields.len(), 7);
        assert!(fields.contains(&("served", "10")));
        assert!(fields.contains(&("cache-hits", "5")));
    }
}
