//! The `AdditivityChecker` tool.
//!
//! Automates the paper's additivity determination: measure every requested
//! event on each base application and on each compound (serial) execution
//! with repeated collection sweeps, then apply the two-stage test and
//! report, per event, the *maximum* Eq. 1 error over the compound suite.

use crate::report::{AdditivityReport, EventAdditivity, Verdict};
use crate::test::AdditivityTest;
use pmca_cpusim::app::{Application, Segment};
use pmca_cpusim::events::EventId;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_parallel::ThreadPool;
use pmca_pmctools::collector::{collect_sweeps_batch_per_group, SweepSamples};
use pmca_pmctools::scheduler::ScheduleError;
use pmca_stats::descriptive::mean;
use std::collections::HashMap;

/// One compound case: two base applications to be composed serially.
pub struct CompoundCase {
    first: Box<dyn Application>,
    second: Box<dyn Application>,
}

impl CompoundCase {
    /// Build a case from two owned applications.
    pub fn new(first: Box<dyn Application>, second: Box<dyn Application>) -> Self {
        CompoundCase { first, second }
    }

    /// Name of the compound (`first;second`).
    pub fn name(&self) -> String {
        format!("{};{}", self.first.name(), self.second.name())
    }
}

/// Serial composition over borrowed components, used internally so the
/// checker can measure `first;second` without taking ownership again.
struct BorrowedCompound<'a> {
    first: &'a dyn Application,
    second: &'a dyn Application,
}

impl Application for BorrowedCompound<'_> {
    fn name(&self) -> String {
        format!("{};{}", self.first.name(), self.second.name())
    }

    fn segments(&self, spec: &PlatformSpec) -> Vec<Segment> {
        let mut segs = self.first.segments(spec);
        segs.extend(self.second.segments(spec));
        segs
    }
}

/// The checker: an [`AdditivityTest`] plus collection bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct AdditivityChecker {
    test: AdditivityTest,
}

impl AdditivityChecker {
    /// Checker with an explicit test configuration.
    pub fn new(test: AdditivityTest) -> Self {
        AdditivityChecker { test }
    }

    /// The test configuration in force.
    pub fn test(&self) -> &AdditivityTest {
        &self.test
    }

    /// Run the full two-stage determination for `events` over the compound
    /// `cases` on `machine`. Base applications shared by several cases are
    /// measured once (keyed by name).
    ///
    /// Measurements run on the process-wide thread pool; see
    /// [`AdditivityChecker::check_with_pool`].
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from PMC collection.
    pub fn check(
        &self,
        machine: &mut Machine,
        events: &[EventId],
        cases: &[CompoundCase],
    ) -> Result<AdditivityReport, ScheduleError> {
        self.check_with_pool(machine, events, cases, &ThreadPool::global())
    }

    /// [`AdditivityChecker::check`] with an explicit pool.
    ///
    /// All (application × repeat) simulator runs of the suite — every
    /// distinct base and every compound — are planned serially in the
    /// order the serial checker would execute them, then fanned out on
    /// the pool, so the report is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from PMC collection.
    pub fn check_with_pool(
        &self,
        machine: &mut Machine,
        events: &[EventId],
        cases: &[CompoundCase],
        pool: &ThreadPool,
    ) -> Result<AdditivityReport, ScheduleError> {
        // Plan the measurement list in serial first-seen order: each
        // case's bases (deduplicated by name), then its compound.
        let compounds: Vec<BorrowedCompound> = cases
            .iter()
            .map(|case| BorrowedCompound {
                first: case.first.as_ref(),
                second: case.second.as_ref(),
            })
            .collect();
        let mut plan: Vec<&dyn Application> = Vec::new();
        let mut plan_names: Vec<String> = Vec::new();
        let mut compound_at: Vec<usize> = Vec::with_capacity(cases.len());
        let mut seen = std::collections::HashSet::new();
        for (case, compound) in cases.iter().zip(&compounds) {
            for app in [case.first.as_ref(), case.second.as_ref()] {
                let name = app.name();
                if seen.insert(name.clone()) {
                    plan.push(app);
                    plan_names.push(name);
                }
            }
            compound_at.push(plan.len());
            plan.push(compound);
            plan_names.push(compound.name());
        }

        // Per-group runs, not the memoized shared-run sweep: stage 1 reads
        // reproducibility off the scatter of *independent* runs, so every
        // counter group must pay its own noise realization, exactly as a
        // multiplexed PMU campaign would.
        //
        // One run here is microseconds of simulation, so a small suite
        // (a matrix cell is typically ≤ 3 apps × a handful of sweeps)
        // loses more to the pool's scope spawn than the fan-out saves;
        // below ~128 runs the serial loop wins.
        let pool = pool.with_min_items(128);
        let measured =
            collect_sweeps_batch_per_group(machine, &plan, events, self.test.runs, &pool)?;
        let per_event_samples = |sweeps: &SweepSamples| -> HashMap<EventId, Vec<f64>> {
            sweeps
                .events
                .iter()
                .map(|&id| {
                    (
                        id,
                        sweeps.samples.iter().map(|s| s[&id]).collect::<Vec<f64>>(),
                    )
                })
                .collect()
        };

        // Per-application samples: app name → event → Vec<count>.
        let mut base_samples: HashMap<String, HashMap<EventId, Vec<f64>>> = HashMap::new();
        let compound_slots: std::collections::HashSet<usize> =
            compound_at.iter().copied().collect();
        for (slot, sweeps) in measured.iter().enumerate() {
            if !compound_slots.contains(&slot) {
                base_samples.insert(plan_names[slot].clone(), per_event_samples(sweeps));
            }
        }
        let compound_samples: Vec<(String, String, HashMap<EventId, Vec<f64>>)> = cases
            .iter()
            .zip(&compound_at)
            .map(|(case, &slot)| {
                (
                    case.first.name(),
                    case.second.name(),
                    per_event_samples(&measured[slot]),
                )
            })
            .collect();

        // Classify each event.
        let mut entries = Vec::with_capacity(events.len());
        for &id in events {
            let name = machine.catalog().event(id).name.clone();
            // Stage 1 over every measured application.
            let reproducible = base_samples.values().all(|per_event| {
                per_event
                    .get(&id)
                    .is_none_or(|s| self.test.is_reproducible(s))
            });
            // Stage 2: max Eq. 1 error over compounds.
            let mut max_error = 0.0_f64;
            let mut worst_compound = String::new();
            for (first, second, compound) in &compound_samples {
                let b1 = mean(&base_samples[first][&id]);
                let b2 = mean(&base_samples[second][&id]);
                let c = mean(&compound[&id]);
                let err = AdditivityTest::equation_1_error_pct(b1, b2, c);
                if err > max_error {
                    max_error = err;
                    worst_compound = format!("{first};{second}");
                }
            }
            let verdict = if !reproducible {
                Verdict::NonReproducible
            } else if self.test.passes(max_error) {
                Verdict::Additive
            } else {
                Verdict::NonAdditive
            };
            entries.push(EventAdditivity {
                id,
                name,
                reproducible,
                max_error_pct: max_error,
                worst_compound,
                verdict,
            });
        }
        Ok(AdditivityReport::new(entries, self.test.tolerance_pct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_workloads::stress::StressKind;
    use pmca_workloads::{Dgemm, Fft2d, Stress};

    fn skylake() -> Machine {
        Machine::new(PlatformSpec::intel_skylake(), 404)
    }

    fn dgemm_fft_cases(n: usize) -> Vec<CompoundCase> {
        (0..n)
            .map(|i| {
                CompoundCase::new(
                    Box::new(Dgemm::new(7_000 + 700 * i)),
                    Box::new(Fft2d::new(23_000 + 500 * i)),
                )
            })
            .collect()
    }

    #[test]
    fn committed_events_pass_on_dgemm_fft() {
        let mut m = skylake();
        let events = m
            .catalog()
            .ids(&[
                "MEM_INST_RETIRED_ALL_STORES",
                "FP_ARITH_INST_RETIRED_DOUBLE",
                "UOPS_EXECUTED_CORE",
            ])
            .unwrap();
        let report = AdditivityChecker::default()
            .check(&mut m, &events, &dgemm_fft_cases(4))
            .unwrap();
        for entry in report.entries() {
            assert_eq!(
                entry.verdict,
                Verdict::Additive,
                "{}: {}",
                entry.name,
                entry.max_error_pct
            );
            assert!(
                entry.max_error_pct < 2.0,
                "{}: {}",
                entry.name,
                entry.max_error_pct
            );
        }
    }

    #[test]
    fn divider_and_ms_uops_fail_on_dgemm_fft() {
        let mut m = skylake();
        let events = m
            .catalog()
            .ids(&["ARITH_DIVIDER_COUNT", "IDQ_MS_UOPS"])
            .unwrap();
        let report = AdditivityChecker::default()
            .check(&mut m, &events, &dgemm_fft_cases(4))
            .unwrap();
        for entry in report.entries() {
            assert_eq!(
                entry.verdict,
                Verdict::NonAdditive,
                "{}: {}",
                entry.name,
                entry.max_error_pct
            );
        }
    }

    #[test]
    fn stress_compounds_break_even_committed_counters() {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 11);
        let events = m
            .catalog()
            .ids(&["INSTR_RETIRED_ANY", "MEM_INST_RETIRED_ALL_STORES"])
            .unwrap();
        let cases: Vec<CompoundCase> = (0..4)
            .map(|i| {
                CompoundCase::new(
                    Box::new(Dgemm::new(4_000 + 500 * i)),
                    Box::new(Stress::new(StressKind::Vm, 3.0 + i as f64)),
                )
            })
            .collect();
        let report = AdditivityChecker::default()
            .check(&mut m, &events, &cases)
            .unwrap();
        let max = report
            .entries()
            .iter()
            .map(|e| e.max_error_pct)
            .fold(0.0_f64, f64::max);
        assert!(
            max > 5.0,
            "adaptive compounds should break additivity, max {max}"
        );
    }

    #[test]
    fn report_records_worst_compound() {
        let mut m = skylake();
        let events = m.catalog().ids(&["ARITH_DIVIDER_COUNT"]).unwrap();
        let report = AdditivityChecker::default()
            .check(&mut m, &events, &dgemm_fft_cases(3))
            .unwrap();
        let entry = &report.entries()[0];
        assert!(
            entry.worst_compound.contains(';'),
            "worst compound: {}",
            entry.worst_compound
        );
    }

    #[test]
    fn shared_bases_are_measured_once() {
        let mut m = skylake();
        let events = m.catalog().ids(&["UOPS_EXECUTED_CORE"]).unwrap();
        // Two cases sharing the same first base.
        let cases = vec![
            CompoundCase::new(Box::new(Dgemm::new(7_000)), Box::new(Fft2d::new(23_000))),
            CompoundCase::new(Box::new(Dgemm::new(7_000)), Box::new(Fft2d::new(24_000))),
        ];
        let runs_before = m.runs_executed();
        AdditivityChecker::default()
            .check(&mut m, &events, &cases)
            .unwrap();
        let consumed = m.runs_executed() - runs_before;
        // 3 distinct bases + 2 compounds, 4 sweeps each, 1 group each = 20,
        // not 24 (the shared dgemm-7000 measured once).
        assert_eq!(consumed, 20, "runs consumed: {consumed}");
    }
}
