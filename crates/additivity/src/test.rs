//! The two-stage additivity test.

use pmca_stats::descriptive::{coefficient_of_variation, mean};

/// Parameters of the additivity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditivityTest {
    /// Stage-2 tolerance, percent (the paper uses 5.0).
    pub tolerance_pct: f64,
    /// Stage-1 reproducibility bound: maximum coefficient of variation
    /// across repeated runs.
    pub reproducibility_cv: f64,
    /// Runs per application used to form sample means.
    pub runs: usize,
}

impl Default for AdditivityTest {
    fn default() -> Self {
        AdditivityTest {
            tolerance_pct: 5.0,
            reproducibility_cv: 0.20,
            runs: 4,
        }
    }
}

impl AdditivityTest {
    /// Variant with a different stage-2 tolerance (for the tolerance-sweep
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics unless `tolerance_pct` is positive and finite.
    pub fn with_tolerance(tolerance_pct: f64) -> Self {
        assert!(
            tolerance_pct.is_finite() && tolerance_pct > 0.0,
            "tolerance must be positive"
        );
        AdditivityTest {
            tolerance_pct,
            ..AdditivityTest::default()
        }
    }

    /// Stage 1: is the event deterministic and reproducible on a sample of
    /// repeated-run counts?
    pub fn is_reproducible(&self, samples: &[f64]) -> bool {
        if samples.len() < 2 {
            return false;
        }
        coefficient_of_variation(samples) <= self.reproducibility_cv
    }

    /// Stage 2, Eq. 1 of the paper: percentage error between the sum of
    /// the base-application sample means and the compound sample mean.
    /// Returns `f64::INFINITY` when the base sum is zero but the compound
    /// is not, and `0.0` when both are zero.
    pub fn equation_1_error_pct(base1_mean: f64, base2_mean: f64, compound_mean: f64) -> f64 {
        let base_sum = base1_mean + base2_mean;
        if base_sum == 0.0 {
            return if compound_mean == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        100.0 * ((base_sum - compound_mean) / base_sum).abs()
    }

    /// Stage 2 from raw samples: means first, then Eq. 1.
    pub fn equation_1_from_samples(&self, base1: &[f64], base2: &[f64], compound: &[f64]) -> f64 {
        Self::equation_1_error_pct(mean(base1), mean(base2), mean(compound))
    }

    /// Final verdict from a stage-2 maximum error.
    pub fn passes(&self, max_error_pct: f64) -> bool {
        max_error_pct <= self.tolerance_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_zero_when_exactly_additive() {
        assert_eq!(AdditivityTest::equation_1_error_pct(10.0, 20.0, 30.0), 0.0);
    }

    #[test]
    fn equation_1_matches_hand_computation() {
        // bases 40 + 60 = 100, compound 125 → 25% error.
        let e = AdditivityTest::equation_1_error_pct(40.0, 60.0, 125.0);
        assert!((e - 25.0).abs() < 1e-12);
    }

    #[test]
    fn equation_1_is_symmetric_in_bases() {
        let a = AdditivityTest::equation_1_error_pct(10.0, 30.0, 45.0);
        let b = AdditivityTest::equation_1_error_pct(30.0, 10.0, 45.0);
        assert_eq!(a, b);
    }

    #[test]
    fn equation_1_handles_undercounting() {
        // compound < sum is just as non-additive.
        let e = AdditivityTest::equation_1_error_pct(50.0, 50.0, 80.0);
        assert!((e - 20.0).abs() < 1e-12);
    }

    #[test]
    fn equation_1_zero_bases() {
        assert_eq!(AdditivityTest::equation_1_error_pct(0.0, 0.0, 0.0), 0.0);
        assert_eq!(
            AdditivityTest::equation_1_error_pct(0.0, 0.0, 5.0),
            f64::INFINITY
        );
    }

    #[test]
    fn equation_1_from_samples_uses_means() {
        let t = AdditivityTest::default();
        let e = t.equation_1_from_samples(&[9.0, 11.0], &[19.0, 21.0], &[33.0, 33.0]);
        // means: 10 + 20 vs 33 → 10%.
        assert!((e - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reproducibility_accepts_tight_samples() {
        let t = AdditivityTest::default();
        assert!(t.is_reproducible(&[100.0, 101.0, 99.5, 100.2]));
    }

    #[test]
    fn reproducibility_rejects_wild_samples() {
        let t = AdditivityTest::default();
        assert!(!t.is_reproducible(&[100.0, 300.0, 20.0, 180.0]));
    }

    #[test]
    fn reproducibility_requires_at_least_two_samples() {
        let t = AdditivityTest::default();
        assert!(!t.is_reproducible(&[100.0]));
    }

    #[test]
    fn verdict_respects_tolerance() {
        let t = AdditivityTest::default();
        assert!(t.passes(4.99));
        assert!(!t.passes(5.01));
        let loose = AdditivityTest::with_tolerance(50.0);
        assert!(loose.passes(45.0));
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_nonpositive_tolerance() {
        let _ = AdditivityTest::with_tolerance(0.0);
    }
}
