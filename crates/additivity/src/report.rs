//! Additivity reports and rankings.

use pmca_cpusim::events::EventId;
use std::fmt;

/// Verdict of the two-stage test for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Passed both stages: potentially additive within tolerance.
    Additive,
    /// Reproducible but failed Eq. 1 on at least one compound.
    NonAdditive,
    /// Failed stage 1: not deterministic across runs.
    NonReproducible,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Additive => write!(f, "additive"),
            Verdict::NonAdditive => write!(f, "non-additive"),
            Verdict::NonReproducible => write!(f, "non-reproducible"),
        }
    }
}

/// Per-event result of the additivity determination.
#[derive(Debug, Clone, PartialEq)]
pub struct EventAdditivity {
    /// Event id in the machine's catalog.
    pub id: EventId,
    /// Likwid-style event name.
    pub name: String,
    /// Stage-1 outcome.
    pub reproducible: bool,
    /// Maximum Eq. 1 error over the compound suite, percent.
    pub max_error_pct: f64,
    /// The compound that produced the maximum error.
    pub worst_compound: String,
    /// Final verdict.
    pub verdict: Verdict,
}

/// Result of a full additivity check over a set of events.
#[derive(Debug, Clone, PartialEq)]
pub struct AdditivityReport {
    entries: Vec<EventAdditivity>,
    tolerance_pct: f64,
}

impl AdditivityReport {
    /// Assemble a report (entries keep the caller's event order).
    pub fn new(entries: Vec<EventAdditivity>, tolerance_pct: f64) -> Self {
        AdditivityReport {
            entries,
            tolerance_pct,
        }
    }

    /// The per-event entries, in the order the events were requested.
    pub fn entries(&self) -> &[EventAdditivity] {
        &self.entries
    }

    /// Stage-2 tolerance used, percent.
    pub fn tolerance_pct(&self) -> f64 {
        self.tolerance_pct
    }

    /// Entries sorted from most additive (smallest max error) to least.
    /// Non-reproducible events sort last regardless of error.
    pub fn ranked(&self) -> Vec<&EventAdditivity> {
        let mut sorted: Vec<&EventAdditivity> = self.entries.iter().collect();
        sorted.sort_by(|a, b| {
            let key =
                |e: &EventAdditivity| (e.verdict == Verdict::NonReproducible, e.max_error_pct);
            key(a).partial_cmp(&key(b)).expect("NaN additivity error")
        });
        sorted
    }

    /// The `k` most additive events, by id.
    pub fn most_additive(&self, k: usize) -> Vec<EventId> {
        self.ranked().into_iter().take(k).map(|e| e.id).collect()
    }

    /// Ids of events that passed the test.
    pub fn additive_ids(&self) -> Vec<EventId> {
        self.entries
            .iter()
            .filter(|e| e.verdict == Verdict::Additive)
            .map(|e| e.id)
            .collect()
    }

    /// The single least additive event (largest max error), if any.
    pub fn least_additive(&self) -> Option<&EventAdditivity> {
        self.entries.iter().max_by(|a, b| {
            a.max_error_pct
                .partial_cmp(&b.max_error_pct)
                .expect("NaN error")
        })
    }

    /// Render the report as an aligned text table (the shape of the
    /// paper's Table 2).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>12} {:>16}\n",
            "PMC", "max error %", "verdict"
        ));
        for e in self.ranked() {
            out.push_str(&format!(
                "{:<44} {:>12.2} {:>16}\n",
                e.name,
                e.max_error_pct,
                e.verdict.to_string()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, name: &str, err: f64, verdict: Verdict) -> EventAdditivity {
        EventAdditivity {
            id: EventId(id),
            name: name.into(),
            reproducible: verdict != Verdict::NonReproducible,
            max_error_pct: err,
            worst_compound: "a;b".into(),
            verdict,
        }
    }

    fn sample() -> AdditivityReport {
        AdditivityReport::new(
            vec![
                entry(0, "DIVIDER", 80.0, Verdict::NonAdditive),
                entry(1, "STORES", 0.4, Verdict::Additive),
                entry(2, "WILD", 3.0, Verdict::NonReproducible),
                entry(3, "MS_UOPS", 37.0, Verdict::NonAdditive),
            ],
            5.0,
        )
    }

    #[test]
    fn ranked_orders_by_error_with_nonreproducible_last() {
        let r = sample();
        let names: Vec<&str> = r.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["STORES", "MS_UOPS", "DIVIDER", "WILD"]);
    }

    #[test]
    fn most_additive_takes_prefix_of_ranking() {
        let r = sample();
        assert_eq!(r.most_additive(2), vec![EventId(1), EventId(3)]);
    }

    #[test]
    fn additive_ids_filters_by_verdict() {
        let r = sample();
        assert_eq!(r.additive_ids(), vec![EventId(1)]);
    }

    #[test]
    fn least_additive_is_the_divider() {
        let r = sample();
        assert_eq!(r.least_additive().unwrap().name, "DIVIDER");
    }

    #[test]
    fn table_contains_all_events() {
        let table = sample().to_table();
        for name in ["DIVIDER", "STORES", "WILD", "MS_UOPS"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Additive.to_string(), "additive");
        assert_eq!(Verdict::NonAdditive.to_string(), "non-additive");
        assert_eq!(Verdict::NonReproducible.to_string(), "non-reproducible");
    }
}
