//! The additivity criterion for PMC selection — the paper's contribution.
//!
//! A PMC intended as a parameter in a *linear* term of an energy predictive
//! model must be **additive**: its value for a compound application (the
//! serial execution of two base applications) must equal the sum of its
//! values for the bases. The justification is physical — dynamic energy
//! itself obeys this law — so a counter that violates it cannot carry a
//! stable energy coefficient.
//!
//! The test has two stages (Sect. 4 of the paper):
//!
//! 1. **Reproducibility** — the PMC must be deterministic across repeated
//!    runs of the same application ([`test::AdditivityTest::reproducibility_cv`]);
//! 2. **Compound versus sum** — for every compound application in the test
//!    suite, the percentage error of Eq. 1,
//!    `|(ē_b1 + ē_b2 − ē_c)/(ē_b1 + ē_b2)| × 100`, computed over sample
//!    means, must stay within the tolerance (the paper uses 5%). The
//!    event's score is the *maximum* error over all compounds.
//!
//! [`checker::AdditivityChecker`] is the `AdditivityChecker` tool of the
//! paper's supplemental: it measures base and compound applications
//! through the multi-run PMC collector and classifies every event.
//!
//! # Examples
//!
//! ```
//! use pmca_cpusim::{Machine, PlatformSpec};
//! use pmca_workloads::{Dgemm, Fft2d};
//! use pmca_additivity::checker::{AdditivityChecker, CompoundCase};
//!
//! let mut machine = Machine::new(PlatformSpec::intel_skylake(), 5);
//! let events = machine.catalog().ids(&["MEM_INST_RETIRED_ALL_STORES", "ARITH_DIVIDER_COUNT"]).unwrap();
//! let cases = vec![CompoundCase::new(Box::new(Dgemm::new(7000)), Box::new(Fft2d::new(23000)))];
//! let report = AdditivityChecker::default().check(&mut machine, &events, &cases).unwrap();
//! // Committed stores pass; the divider does not.
//! assert!(report.entries()[0].max_error_pct < report.entries()[1].max_error_pct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod matrix;
pub mod report;
pub mod test;

pub use checker::{AdditivityChecker, CompoundCase};
pub use matrix::AdditivityMatrix;
pub use report::{AdditivityReport, EventAdditivity, Verdict};
pub use test::AdditivityTest;
