//! Per-compound additivity detail.
//!
//! [`AdditivityReport`](crate::AdditivityReport) keeps only each event's
//! *worst* Eq. 1 error — enough for selection, but when a counter fails
//! the practitioner's next question is *which compositions break it*.
//! [`AdditivityMatrix`] keeps the full event × compound error matrix and
//! can render it, rank compounds by destructiveness, and distinguish
//! broad-spectrum non-additivity (every compound) from context-specific
//! spikes (one pathological neighbour).

use crate::checker::{AdditivityChecker, CompoundCase};
use crate::test::AdditivityTest;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_parallel::ThreadPool;
use pmca_pmctools::scheduler::ScheduleError;
use pmca_stats::descriptive::{mean, median};

/// The full event × compound Eq. 1 error matrix.
#[derive(Debug, Clone)]
pub struct AdditivityMatrix {
    event_names: Vec<String>,
    compound_names: Vec<String>,
    /// `errors[e][c]` = Eq. 1 error (%) of event `e` on compound `c`.
    errors: Vec<Vec<f64>>,
}

impl AdditivityMatrix {
    /// Measure the matrix for `events` over `cases` on `machine`, using
    /// the checker's sampling configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from PMC collection.
    pub fn measure(
        checker: &AdditivityChecker,
        machine: &mut Machine,
        events: &[EventId],
        cases: &[CompoundCase],
    ) -> Result<Self, ScheduleError> {
        Self::measure_with_pool(checker, machine, events, cases, &ThreadPool::global())
    }

    /// [`AdditivityMatrix::measure`] with an explicit pool.
    ///
    /// Cases are visited serially (so run-index reservation matches the
    /// serial order exactly); within each case the checker fans its
    /// (application × repeat) measurements out on `pool`, keeping the
    /// matrix bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from PMC collection.
    pub fn measure_with_pool(
        checker: &AdditivityChecker,
        machine: &mut Machine,
        events: &[EventId],
        cases: &[CompoundCase],
        pool: &ThreadPool,
    ) -> Result<Self, ScheduleError> {
        let mut errors = vec![Vec::with_capacity(cases.len()); events.len()];
        let mut compound_names = Vec::with_capacity(cases.len());
        // One checker pass per compound keeps base measurements cached
        // inside each pass; a shared cache across passes would couple this
        // type to checker internals for little gain at matrix sizes.
        for case in cases {
            compound_names.push(case.name());
            let single = std::slice::from_ref(case);
            let report = checker.check_with_pool(machine, events, single, pool)?;
            for (row, entry) in errors.iter_mut().zip(report.entries()) {
                row.push(entry.max_error_pct);
            }
        }
        let event_names = events
            .iter()
            .map(|&id| machine.catalog().event(id).name.clone())
            .collect();
        Ok(AdditivityMatrix {
            event_names,
            compound_names,
            errors,
        })
    }

    /// Event names (rows).
    pub fn event_names(&self) -> &[String] {
        &self.event_names
    }

    /// Compound names (columns).
    pub fn compound_names(&self) -> &[String] {
        &self.compound_names
    }

    /// Error of one `(event, compound)` cell, percent.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn error(&self, event: usize, compound: usize) -> f64 {
        self.errors[event][compound]
    }

    /// Per-event summary: `(name, median error, max error)`.
    pub fn event_summary(&self) -> Vec<(String, f64, f64)> {
        self.event_names
            .iter()
            .zip(&self.errors)
            .map(|(name, row)| {
                let max = row.iter().copied().fold(0.0_f64, f64::max);
                (name.clone(), median(row), max)
            })
            .collect()
    }

    /// Compounds ranked by the mean error they induce across all events —
    /// the most "destructive" compositions first.
    pub fn most_destructive_compounds(&self) -> Vec<(String, f64)> {
        let mut ranked: Vec<(String, f64)> = self
            .compound_names
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let col: Vec<f64> = self.errors.iter().map(|row| row[c]).collect();
                (name.clone(), mean(&col))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite errors"));
        ranked
    }

    /// Whether an event's non-additivity is *broad-spectrum* — its median
    /// error across compounds exceeds the tolerance — rather than a spike
    /// caused by one pathological neighbour.
    pub fn is_broad_spectrum(&self, event: usize, test: &AdditivityTest) -> bool {
        !test.passes(median(&self.errors[event]))
    }

    /// Compact text heat table: rows = events, columns = compounds
    /// (numbered), cells = error %.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<40}", "event \\ compound"));
        for c in 0..self.compound_names.len() {
            out.push_str(&format!(" {:>7}", format!("#{}", c + 1)));
        }
        out.push('\n');
        for (name, row) in self.event_names.iter().zip(&self.errors) {
            out.push_str(&format!("{name:<40}"));
            for e in row {
                out.push_str(&format!(" {e:>7.1}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::PlatformSpec;
    use pmca_workloads::{Dgemm, Fft2d};

    fn matrix() -> AdditivityMatrix {
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), 21);
        let events = machine
            .catalog()
            .ids(&["MEM_INST_RETIRED_ALL_STORES", "ARITH_DIVIDER_COUNT"])
            .unwrap();
        let cases = vec![
            CompoundCase::new(Box::new(Dgemm::new(7_000)), Box::new(Fft2d::new(23_000))),
            CompoundCase::new(Box::new(Fft2d::new(24_000)), Box::new(Dgemm::new(9_000))),
            CompoundCase::new(Box::new(Dgemm::new(8_000)), Box::new(Dgemm::new(10_000))),
        ];
        AdditivityMatrix::measure(&AdditivityChecker::default(), &mut machine, &events, &cases)
            .unwrap()
    }

    #[test]
    fn matrix_shape_matches_inputs() {
        let m = matrix();
        assert_eq!(m.event_names().len(), 2);
        assert_eq!(m.compound_names().len(), 3);
        for e in 0..2 {
            for c in 0..3 {
                assert!(m.error(e, c).is_finite());
            }
        }
    }

    #[test]
    fn divider_is_broad_spectrum_stores_are_not() {
        let m = matrix();
        let test = AdditivityTest::default();
        // Row 0 = stores, row 1 = divider (request order).
        assert!(
            !m.is_broad_spectrum(0, &test),
            "stores broke everywhere: {:?}",
            m.event_summary()
        );
        assert!(
            m.is_broad_spectrum(1, &test),
            "divider should break everywhere: {:?}",
            m.event_summary()
        );
    }

    #[test]
    fn summary_max_bounds_median() {
        let m = matrix();
        for (name, median, max) in m.event_summary() {
            assert!(median <= max + 1e-12, "{name}: {median} > {max}");
        }
    }

    #[test]
    fn destructive_ranking_is_sorted() {
        let m = matrix();
        let ranked = m.most_destructive_compounds();
        assert_eq!(ranked.len(), 3);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn table_mentions_events_and_columns() {
        let m = matrix();
        let t = m.to_table();
        assert!(t.contains("ARITH_DIVIDER_COUNT"));
        assert!(t.contains("#3"));
    }
}
