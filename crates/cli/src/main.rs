//! `slope-pmc` — the command-line front end of SLOPE-PMC-RS.
//!
//! ```text
//! slope-pmc specs
//! slope-pmc audit    --platform skylake --compounds 8 EVENT [EVENT...]
//! slope-pmc schedule --platform haswell [EVENT...]
//! slope-pmc measure  --platform skylake APP_SPEC [APP_SPEC...]
//! slope-pmc collect  --platform skylake --app dgemm:12000 EVENT [EVENT...]
//! slope-pmc serve    --addr 127.0.0.1:7771 --workers 4
//! slope-pmc query    --addr 127.0.0.1:7771 ESTIMATE-APP skylake dgemm:12000
//! ```
//!
//! Application specs use `family:size` syntax (`dgemm:12000`,
//! `npb-cg:1.2`, `stress-vm:5`, compounds as `a;b`); see
//! `pmca_workloads::parse`.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            pmca_obs::log::error("cli", &message, &[]);
            eprintln!("\n{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
