//! Subcommand parsing and execution for `slope-pmc`.

use pmca_additivity::{AdditivityChecker, AdditivityMatrix, AdditivityTest, CompoundCase};
use pmca_core::online::OnlineModel;
use pmca_core::tables::TextTable;
use pmca_cpusim::events::EventId;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_pmctools::collector::collect_all;
use pmca_pmctools::scheduler::schedule;
use pmca_powermeter::HclWattsUp;
use pmca_serve::{Client, HealthRow, Request, Server, ServiceConfig, Transport};
use pmca_workloads::parse::app_from_spec;
use pmca_workloads::suite::class_b_compound_pairs;
use std::sync::Arc;

/// Usage text shown on any argument error.
pub const USAGE: &str = "\
usage:
  slope-pmc specs
      print the simulated platform specifications (paper Table 1)

  slope-pmc schedule [--platform haswell|skylake] [EVENT ...]
      partition events (default: the whole catalog) into counter groups;
      one group = one application run

  slope-pmc audit [--platform haswell|skylake] [--compounds N] [--jobs N]
                  EVENT [EVENT ...]
      run the paper's two-stage additivity test over N DGEMM/FFT compounds
      (default 8) and print the ranked report

  slope-pmc measure [--platform haswell|skylake] [--jobs N] APP_SPEC [APP_SPEC ...]
      measure dynamic energy via the simulated WattsUp meter
      (APP_SPEC examples: dgemm:12000  npb-cg:1.2  'dgemm:9000;fft:24000')

  slope-pmc collect [--platform haswell|skylake] [--jobs N] --app APP_SPEC
                    EVENT [EVENT ...]
      collect PMCs for one application, reporting the runs consumed

  slope-pmc online [--platform haswell|skylake] [--jobs N]
                   --train SPEC,SPEC,... --events E,E,...
                   APP_SPEC [APP_SPEC ...]
      train a single-run online energy model (<= 4 events) on the --train
      applications and estimate each APP_SPEC's energy from one run

  slope-pmc matrix [--platform haswell|skylake] [--compounds N] [--jobs N]
                   EVENT [EVENT ...]
      print the full event x compound additivity-error matrix: which
      compositions break which counters

  --jobs N sizes the offline experiment thread pool (simulated runs, forest
  training, cross-validation); it defaults to the available parallelism and
  never changes results: every output is bit-identical at any thread count

  slope-pmc serve [--addr HOST:PORT] [--workers N] [--cache N] [--registry DIR]
                  [--shards N] [--transport threaded|evented] [--event-loops N]
                  [--metrics] [--trace-slow-ms MS] [--trace-log PATH] [--no-trace]
                  [--no-fast-tier]
      run the energy estimation server (default 127.0.0.1:7771, 4 workers);
      speaks the line protocol: ESTIMATE, ESTIMATE-APP, TRAIN, MODELS,
      STATS, METRICS, TRACE, HEALTH, HISTORY, SHARDS, QUIT; --registry
      loads saved models
      at startup; --shards N runs N in-process shards behind a
      consistent-hash router (shard 0 keeps the file-backed registry,
      replicas restore from its snapshot; --workers is split across
      shards); --transport evented serves all connections from
      --event-loops nonblocking event-loop threads instead of one thread
      per connection; --metrics serves until stdin closes, then dumps the
      metrics snapshot (latency histograms + counters) before exiting;
      --trace-slow-ms keeps every request slower than MS in the slow
      flight recorder, --trace-log appends each captured trace as JSONL
      to PATH, --no-trace disables request tracing entirely;
      --no-fast-tier disables the fixed-point fast tier so tier=fixed
      requests run the f64 path

  slope-pmc query [--addr HOST:PORT] REQUEST...
      send one protocol request to a running server and print the reply
      (e.g.  slope-pmc query STATS
             slope-pmc query METRICS
             slope-pmc query SHARDS
             slope-pmc query TRACE SLOWEST
             slope-pmc query HEALTH
             slope-pmc query HISTORY 4
             slope-pmc query ESTIMATE-APP skylake dgemm:12000)

  slope-pmc stream [--addr HOST:PORT] [--platform haswell|skylake]
                   [--app APP_SPEC] [--window N] [--windows N]
                   [--label-every N] [ID]
      drive one telemetry stream against a running server: STREAM OPEN,
      push --windows one-second windows of deployable-set PMC counts
      (every --label-every'th window labelled with measured joules so the
      online model refits), then poll the live energy/power estimate and
      close; ID defaults to cli-stream

  slope-pmc monitor [--addr HOST:PORT] [--interval-ms MS] [--iterations N]
                    [--health]
      poll STREAM LIST on a running server every MS milliseconds (default
      1000) for N rounds (default 1; 0 = forever) and print a status
      table per round: windows retained, estimated watts ±95% PI, model
      family/version feeding each stream; --health also polls HEALTH and
      prints per-platform calibration (MAE, MPE, PI coverage, drift
      state) and per-counter additivity violation rates";

/// Parsed global options plus positional arguments.
struct Parsed {
    platform: PlatformSpec,
    compounds: usize,
    app: Option<String>,
    train: Vec<String>,
    events: Vec<String>,
    addr: String,
    jobs: Option<usize>,
    workers: usize,
    cache: usize,
    registry: Option<String>,
    shards: usize,
    transport: Transport,
    event_loops: usize,
    metrics_dump: bool,
    trace_slow_ms: Option<u64>,
    trace_log: Option<String>,
    no_trace: bool,
    no_fast_tier: bool,
    window: usize,
    windows: usize,
    label_every: usize,
    interval_ms: u64,
    iterations: usize,
    health: bool,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Parsed, String> {
    let mut platform = PlatformSpec::intel_skylake();
    let mut compounds = 8;
    let mut app = None;
    let mut train = Vec::new();
    let mut events = Vec::new();
    let mut addr = "127.0.0.1:7771".to_string();
    let mut jobs = None;
    let mut workers = 4;
    let mut cache = 256;
    let mut registry = None;
    let mut shards = 1;
    let mut transport = Transport::Threaded;
    let mut event_loops = 4;
    let mut metrics_dump = false;
    let mut trace_slow_ms = None;
    let mut trace_log = None;
    let mut no_trace = false;
    let mut no_fast_tier = false;
    let mut window = 32;
    let mut windows = 60;
    let mut label_every = 1;
    let mut interval_ms = 1000;
    let mut iterations = 1;
    let mut health = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--platform" => {
                let value = it.next().ok_or("--platform needs a value")?;
                platform = match value.to_ascii_lowercase().as_str() {
                    "haswell" => PlatformSpec::intel_haswell(),
                    "skylake" => PlatformSpec::intel_skylake(),
                    other => return Err(format!("unknown platform {other:?}")),
                };
            }
            "--compounds" => {
                let value = it.next().ok_or("--compounds needs a value")?;
                compounds = value
                    .parse::<usize>()
                    .map_err(|_| format!("--compounds: {value:?} is not a count"))?
                    .max(1);
            }
            "--app" => {
                app = Some(it.next().ok_or("--app needs a value")?.clone());
            }
            "--train" => {
                let value = it.next().ok_or("--train needs a comma-separated list")?;
                train = value.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--events" => {
                let value = it.next().ok_or("--events needs a comma-separated list")?;
                events = value.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--addr" => {
                addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--jobs: {value:?} is not a positive count"))?,
                );
            }
            "--workers" => {
                let value = it.next().ok_or("--workers needs a value")?;
                workers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--workers: {value:?} is not a positive count"))?;
            }
            "--cache" => {
                let value = it.next().ok_or("--cache needs a value")?;
                cache = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--cache: {value:?} is not a positive count"))?;
            }
            "--registry" => {
                registry = Some(it.next().ok_or("--registry needs a directory")?.clone());
            }
            "--shards" => {
                let value = it.next().ok_or("--shards needs a value")?;
                shards = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--shards: {value:?} is not a positive count"))?;
            }
            "--transport" => {
                let value = it.next().ok_or("--transport needs threaded or evented")?;
                transport = value.parse::<Transport>()?;
            }
            "--event-loops" => {
                let value = it.next().ok_or("--event-loops needs a value")?;
                event_loops = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--event-loops: {value:?} is not a positive count"))?;
            }
            "--metrics" => metrics_dump = true,
            "--trace-slow-ms" => {
                let value = it.next().ok_or("--trace-slow-ms needs a value")?;
                trace_slow_ms = Some(value.parse::<u64>().map_err(|_| {
                    format!("--trace-slow-ms: {value:?} is not a millisecond count")
                })?);
            }
            "--trace-log" => {
                trace_log = Some(it.next().ok_or("--trace-log needs a file path")?.clone());
            }
            "--no-trace" => no_trace = true,
            "--no-fast-tier" => no_fast_tier = true,
            "--window" => {
                let value = it.next().ok_or("--window needs a value")?;
                window = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--window: {value:?} is not a positive count"))?;
            }
            "--windows" => {
                let value = it.next().ok_or("--windows needs a value")?;
                windows = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--windows: {value:?} is not a positive count"))?;
            }
            "--label-every" => {
                let value = it.next().ok_or("--label-every needs a value")?;
                label_every = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--label-every: {value:?} is not a positive count"))?;
            }
            "--interval-ms" => {
                let value = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = value
                    .parse::<u64>()
                    .map_err(|_| format!("--interval-ms: {value:?} is not a millisecond count"))?;
            }
            "--iterations" => {
                let value = it.next().ok_or("--iterations needs a value")?;
                iterations = value
                    .parse::<usize>()
                    .map_err(|_| format!("--iterations: {value:?} is not a count"))?;
            }
            "--health" => health = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    Ok(Parsed {
        platform,
        compounds,
        app,
        train,
        events,
        addr,
        jobs,
        workers,
        cache,
        registry,
        shards,
        transport,
        event_loops,
        metrics_dump,
        trace_slow_ms,
        trace_log,
        no_trace,
        no_fast_tier,
        window,
        windows,
        label_every,
        interval_ms,
        iterations,
        health,
        positional,
    })
}

fn resolve_events(machine: &Machine, names: &[String]) -> Result<Vec<EventId>, String> {
    if names.is_empty() {
        return Ok(machine.catalog().all_ids());
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    machine
        .catalog()
        .ids(&refs)
        .map_err(|unknown| format!("unknown event {unknown:?} on {}", machine.spec().micro_arch))
}

/// Dispatch a full argument vector.
///
/// # Errors
///
/// Returns a user-facing message on any parse or lookup failure.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let options = parse_options(rest)?;
    if let Some(n) = options.jobs {
        pmca_parallel::set_global_jobs(n);
    }
    match command.as_str() {
        "specs" => cmd_specs(),
        "schedule" => cmd_schedule(options),
        "audit" => cmd_audit(options),
        "measure" => cmd_measure(options),
        "collect" => cmd_collect(options),
        "online" => cmd_online(options),
        "matrix" => cmd_matrix(options),
        "serve" => cmd_serve(&options),
        "query" => cmd_query(&options),
        "stream" => cmd_stream(&options),
        "monitor" => cmd_monitor(&options),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_specs() -> Result<(), String> {
    for spec in [PlatformSpec::intel_haswell(), PlatformSpec::intel_skylake()] {
        println!(
            "{arch}: {proc}, {sockets}×{cores} cores ({threads} threads), L2 {l2} KB, L3 {l3} KB, \
             {mem} GB, TDP {tdp} W, idle {idle} W",
            arch = spec.micro_arch,
            proc = spec.processor,
            sockets = spec.sockets,
            cores = spec.cores_per_socket,
            threads = spec.total_threads(),
            l2 = spec.l2_kib,
            l3 = spec.l3_kib,
            mem = spec.memory_gib,
            tdp = spec.tdp_watts,
            idle = spec.idle_power_watts,
        );
    }
    Ok(())
}

fn cmd_schedule(options: Parsed) -> Result<(), String> {
    let machine = Machine::new(options.platform, 1);
    let events = resolve_events(&machine, &options.positional)?;
    let groups = schedule(machine.catalog(), &events).map_err(|e| e.to_string())?;
    println!(
        "{} events on {} → {} runs",
        events.len(),
        machine.spec().micro_arch,
        groups.len()
    );
    for (i, group) in groups.iter().enumerate() {
        let names: Vec<&str> = group
            .events
            .iter()
            .map(|&id| machine.catalog().event(id).name.as_str())
            .collect();
        println!("  run {:>3}: {}", i + 1, names.join(", "));
        if i >= 19 && groups.len() > 24 {
            println!("  … {} more runs", groups.len() - i - 1);
            break;
        }
    }
    Ok(())
}

fn cmd_audit(options: Parsed) -> Result<(), String> {
    if options.positional.is_empty() {
        return Err("audit needs at least one EVENT".into());
    }
    let mut machine = Machine::new(options.platform, 1);
    let events = resolve_events(&machine, &options.positional)?;
    let cases: Vec<CompoundCase> = class_b_compound_pairs(options.compounds, 1)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let report = AdditivityChecker::default()
        .check(&mut machine, &events, &cases)
        .map_err(|e| e.to_string())?;
    println!(
        "additivity over {} DGEMM/FFT compounds on {} (tolerance {:.0}%):\n",
        options.compounds,
        machine.spec().micro_arch,
        report.tolerance_pct()
    );
    print!("{}", report.to_table());
    Ok(())
}

fn cmd_measure(options: Parsed) -> Result<(), String> {
    if options.positional.is_empty() {
        return Err("measure needs at least one APP_SPEC".into());
    }
    let mut machine = Machine::new(options.platform, 1);
    let mut meter = HclWattsUp::new(&machine, 1);
    let mut t = TextTable::new(
        format!(
            "dynamic energy on {} (static power {:.1} W)",
            machine.spec().micro_arch,
            meter.static_power_w()
        ),
        &["application", "energy (J)", "±CI", "time (s)", "runs"],
    );
    for spec in &options.positional {
        let app = app_from_spec(spec).map_err(|e| e.to_string())?;
        let m = meter.measure_dynamic_energy(&mut machine, app.as_ref());
        t.row(vec![
            app.name(),
            format!("{:.1}", m.mean_joules),
            format!("{:.1}", m.ci_half_width),
            format!("{:.2}", m.mean_seconds),
            m.runs.to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_collect(options: Parsed) -> Result<(), String> {
    let spec = options
        .app
        .as_deref()
        .ok_or("collect needs --app APP_SPEC")?;
    if options.positional.is_empty() {
        return Err("collect needs at least one EVENT".into());
    }
    let mut machine = Machine::new(options.platform, 1);
    let events = resolve_events(&machine, &options.positional)?;
    let app = app_from_spec(spec).map_err(|e| e.to_string())?;
    let pmcs = collect_all(&mut machine, app.as_ref(), &events).map_err(|e| e.to_string())?;
    println!(
        "{} on {} ({} runs consumed):",
        app.name(),
        machine.spec().micro_arch,
        pmcs.runs_used
    );
    for &id in &events {
        println!(
            "  {:<44} {:>20.0}",
            machine.catalog().event(id).name,
            pmcs.get(id)
        );
    }
    Ok(())
}

fn cmd_online(options: Parsed) -> Result<(), String> {
    if options.train.is_empty() {
        return Err("online needs --train SPEC,SPEC,...".into());
    }
    if options.events.is_empty() {
        return Err("online needs --events E,E,...".into());
    }
    if options.positional.is_empty() {
        return Err("online needs at least one APP_SPEC to estimate".into());
    }
    let mut machine = Machine::new(options.platform, 1);
    let mut meter = HclWattsUp::new(&machine, 1);
    let train_apps = options
        .train
        .iter()
        .map(|spec| app_from_spec(spec).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let train_refs: Vec<&dyn pmca_cpusim::Application> =
        train_apps.iter().map(|a| a.as_ref()).collect();
    let event_refs: Vec<&str> = options.events.iter().map(String::as_str).collect();
    let model = OnlineModel::train(&mut machine, &mut meter, &event_refs, &train_refs)
        .map_err(|e| e.to_string())?;
    println!(
        "online model on {} using {} (trained on {} apps):",
        machine.spec().micro_arch,
        model.pmc_names().join(", "),
        train_refs.len()
    );
    let mut t = TextTable::new("", &["application", "estimated energy (J)", "runs used"]);
    for spec in &options.positional {
        let app = app_from_spec(spec).map_err(|e| e.to_string())?;
        let estimate = model.estimate(&mut machine, app.as_ref());
        t.row(vec![app.name(), format!("{estimate:.1}"), "1".into()]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_matrix(options: Parsed) -> Result<(), String> {
    if options.positional.is_empty() {
        return Err("matrix needs at least one EVENT".into());
    }
    let mut machine = Machine::new(options.platform, 1);
    let events = resolve_events(&machine, &options.positional)?;
    let cases: Vec<CompoundCase> = class_b_compound_pairs(options.compounds, 1)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let checker = AdditivityChecker::default();
    let matrix = AdditivityMatrix::measure(&checker, &mut machine, &events, &cases)
        .map_err(|e| e.to_string())?;
    println!(
        "Eq. 1 additivity error (%) per event x compound on {}:\n",
        machine.spec().micro_arch
    );
    print!("{}", matrix.to_table());
    println!("\ncompounds:");
    for (i, name) in matrix.compound_names().iter().enumerate() {
        println!("  #{:<3} {name}", i + 1);
    }
    println!("\nbroad-spectrum non-additive (median error above tolerance):");
    let test = AdditivityTest::default();
    for (i, name) in matrix.event_names().iter().enumerate() {
        if matrix.is_broad_spectrum(i, &test) {
            println!("  {name}");
        }
    }
    if let Some((worst, err)) = matrix.most_destructive_compounds().first() {
        println!("\nmost destructive composition: {worst} (mean error {err:.1}%)");
    }
    Ok(())
}

fn cmd_serve(options: &Parsed) -> Result<(), String> {
    let mut config = ServiceConfig::default()
        .workers(options.workers)
        .cache_capacity(options.cache)
        .seed(1)
        .transport(options.transport)
        .event_loops(options.event_loops)
        .tracing(!options.no_trace)
        .fast_tier(!options.no_fast_tier);
    if let Some(dir) = &options.registry {
        config = config.registry_dir(dir);
    }
    if let Some(ms) = options.trace_slow_ms {
        config = config.trace_slow_ms(ms);
    }
    if let Some(path) = &options.trace_log {
        config = config.trace_log(path);
    }
    let router = Arc::new(config.build_sharded(options.shards).map_err(
        |e| match &options.registry {
            Some(dir) => format!("--registry {dir}: {e}"),
            None => e.to_string(),
        },
    )?);
    let service = router.primary();
    if let Some(dir) = &options.registry {
        println!("loaded {} model(s) from {dir}", service.stats().models);
    }
    match pmca_simd::override_request() {
        Some(req) => println!(
            "simd kernels: {} (PMCA_SIMD={req})",
            pmca_simd::Isa::active().as_str()
        ),
        None => println!(
            "simd kernels: {} (detected)",
            pmca_simd::Isa::active().as_str()
        ),
    }
    let server = Server::start_router(Arc::clone(&router), &options.addr)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let topology = if options.shards > 1 {
        format!(", {} shards", options.shards)
    } else {
        String::new()
    };
    if options.metrics_dump {
        println!(
            "slope-pmc serving on {} ({} workers, {}-run cache, {} transport{topology}); \
             close stdin (Ctrl-D) for a metrics dump and exit",
            server.addr(),
            options.workers,
            options.cache,
            options.transport,
        );
        // No signal handling in std: drain stdin so the operator (or a
        // driving script) can end the run deterministically, then dump
        // every instrument the METRICS command would expose.
        let mut sink = String::new();
        while let Ok(n) = std::io::stdin().read_line(&mut sink) {
            if n == 0 {
                break;
            }
            sink.clear();
        }
        println!("metrics at shutdown:");
        for line in service.metrics_lines() {
            println!("{line}");
        }
        return Ok(());
    }
    println!(
        "slope-pmc serving on {} ({} workers, {}-run cache, {} transport{topology}); \
         stop with Ctrl-C",
        server.addr(),
        options.workers,
        options.cache,
        options.transport,
    );
    // Serve until killed: connections are handled on their own threads.
    loop {
        std::thread::park();
    }
}

fn cmd_query(options: &Parsed) -> Result<(), String> {
    if options.positional.is_empty() {
        return Err("query needs a request, e.g.  slope-pmc query STATS".into());
    }
    let mut client = Client::connect(options.addr.as_str())
        .map_err(|e| format!("cannot reach server at {}: {e}", options.addr))?;
    let line = options.positional.join(" ");
    if line.trim().eq_ignore_ascii_case("MODELS") {
        let models = client.models().map_err(|e| e.to_string())?;
        println!("{} model(s) registered", models.len());
        for model in models {
            println!("  {model}");
        }
    } else if line.trim().eq_ignore_ascii_case("METRICS") {
        let metrics = client.metrics().map_err(|e| e.to_string())?;
        println!("{} metric line(s)", metrics.len());
        for metric in metrics {
            println!("  {metric}");
        }
    } else if line.trim().eq_ignore_ascii_case("SHARDS") {
        let shards = client.shards().map_err(|e| e.to_string())?;
        println!("{} shard(s)", shards.len());
        for shard in shards {
            println!(
                "  shard {}: owns [{}], {} model(s), {} stream(s), served {}, \
                 errors {}, {} cached run(s), {} worker(s)",
                shard.shard,
                shard.owns.join(", "),
                shard.models,
                shard.streams,
                shard.served,
                shard.errors,
                shard.cache_entries,
                shard.workers,
            );
        }
    } else if line.trim().eq_ignore_ascii_case("HEALTH") {
        let rows = client.health().map_err(|e| e.to_string())?;
        print_health(&rows);
    } else if let Ok(Request::History { limit }) = Request::parse(&line) {
        let rows = client.history(limit).map_err(|e| e.to_string())?;
        println!("{} history row(s)", rows.len());
        let mut t = TextTable::new(String::new(), &["snapshot", "metric", "value", "delta"]);
        for row in &rows {
            t.row(vec![
                row.seq.to_string(),
                row.metric.clone(),
                format!("{:.3}", row.value),
                format!("{:+.3}", row.delta),
            ]);
        }
        print!("{}", t.render());
    } else if let Ok(Request::Trace { scope, limit }) = Request::parse(&line) {
        let lines = client.trace(scope, limit).map_err(|e| e.to_string())?;
        println!("{} trace event line(s)", lines.len());
        for event in lines {
            println!("{event}");
        }
    } else {
        let reply = client.raw_line(&line).map_err(|e| e.to_string())?;
        println!("{reply}");
    }
    Ok(())
}

fn print_health(rows: &[HealthRow]) {
    let shard_label =
        |shard: &Option<usize>| shard.map_or_else(|| "all".to_string(), |index| index.to_string());
    let calibration: Vec<_> = rows
        .iter()
        .filter_map(|row| match row {
            HealthRow::Calibration { shard, snapshot } => Some((shard, snapshot)),
            HealthRow::Additivity { .. } => None,
        })
        .collect();
    let additivity: Vec<_> = rows
        .iter()
        .filter_map(|row| match row {
            HealthRow::Additivity { shard, snapshot } => Some((shard, snapshot)),
            HealthRow::Calibration { .. } => None,
        })
        .collect();
    println!(
        "{} calibration row(s), {} additivity row(s)",
        calibration.len(),
        additivity.len()
    );
    if !calibration.is_empty() {
        let mut t = TextTable::new(
            "model calibration".to_string(),
            &[
                "shard", "platform", "version", "samples", "MAE (J)", "MPE (%)", "coverage",
                "drift", "state",
            ],
        );
        for (shard, c) in &calibration {
            t.row(vec![
                shard_label(shard),
                c.platform.clone(),
                c.version.to_string(),
                c.samples.to_string(),
                format!("{:.3}", c.mae),
                format!("{:+.2}", c.mpe),
                format!("{:.0}%", c.coverage * 100.0),
                format!("{:.2}", c.cusum.max(c.page_hinkley)),
                c.state.as_str().to_string(),
            ]);
        }
        print!("{}", t.render());
    }
    if !additivity.is_empty() {
        let mut t = TextTable::new(
            "counter additivity".to_string(),
            &[
                "shard",
                "platform",
                "counter",
                "checks",
                "violations",
                "rate",
                "worst (%)",
            ],
        );
        for (shard, a) in &additivity {
            t.row(vec![
                shard_label(shard),
                a.platform.clone(),
                a.counter.clone(),
                a.checks.to_string(),
                a.violations.to_string(),
                format!("{:.2}", a.rate),
                format!("{:.1}", a.worst_error_pct),
            ]);
        }
        print!("{}", t.render());
    }
}

fn cmd_stream(options: &Parsed) -> Result<(), String> {
    let id = options
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "cli-stream".to_string());
    let app = options.app.clone().unwrap_or_else(|| "dgemm:8000".into());
    let platform = options.platform.micro_arch.to_string().to_ascii_lowercase();
    let mut client = Client::connect(options.addr.as_str())
        .map_err(|e| format!("cannot reach server at {}: {e}", options.addr))?;
    let capacity = client
        .stream_open(&id, &app, &platform, options.window)
        .map_err(|e| e.to_string())?;
    println!("stream {id} open on {platform} (ring capacity {capacity} windows)");
    let mut labelled = 0usize;
    for i in 0..options.windows {
        let window = i as u64;
        let (counts, joules) = pmca_stream::synthetic_window(1, window);
        let label = (i + 1) % options.label_every == 0;
        labelled += usize::from(label);
        client
            .stream_push(&id, window, counts, label.then_some(joules))
            .map_err(|e| e.to_string())?;
    }
    let status = client.stream_poll(&id).map_err(|e| e.to_string())?;
    println!(
        "pushed {} windows ({labelled} labelled); estimate from {} v{} ({} rows):",
        options.windows, status.family, status.version, status.rows
    );
    let mut t = TextTable::new(
        String::new(),
        &["retained", "energy (J/window)", "±95% PI", "power (W)"],
    );
    t.row(vec![
        format!("{}/{}", status.retained, status.capacity),
        format!("{:.2}", status.joules),
        format!("{:.2}", status.ci95),
        format!("{:.2}", status.watts),
    ]);
    print!("{}", t.render());
    let accepted = client.stream_close(&id).map_err(|e| e.to_string())?;
    println!("stream {id} closed after {accepted} accepted windows");
    Ok(())
}

fn cmd_monitor(options: &Parsed) -> Result<(), String> {
    let mut client = Client::connect(options.addr.as_str())
        .map_err(|e| format!("cannot reach server at {}: {e}", options.addr))?;
    let mut round = 0usize;
    loop {
        round += 1;
        let statuses = client.stream_list().map_err(|e| e.to_string())?;
        let mut t = TextTable::new(
            format!("{} open stream(s)", statuses.len()),
            &[
                "stream",
                "app",
                "platform",
                "windows",
                "power (W)",
                "±95% PI",
                "model",
                "idle (ms)",
            ],
        );
        for s in &statuses {
            t.row(vec![
                s.stream.clone(),
                s.app.clone(),
                s.platform.clone(),
                format!("{}/{}", s.retained, s.capacity),
                format!("{:.2}", s.watts),
                format!("{:.2}", s.ci95),
                format!("{} v{}", s.family, s.version),
                s.idle_ms.to_string(),
            ]);
        }
        print!("{}", t.render());
        if options.health {
            let rows = client.health().map_err(|e| e.to_string())?;
            print_health(&rows);
        }
        if options.iterations != 0 && round >= options.iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_empty_and_unknown_commands() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn specs_runs() {
        assert!(dispatch(&argv(&["specs"])).is_ok());
    }

    #[test]
    fn schedule_subset_runs() {
        assert!(dispatch(&argv(&[
            "schedule",
            "--platform",
            "haswell",
            "IDQ_MS_UOPS",
            "L2_RQSTS_MISS"
        ]))
        .is_ok());
    }

    #[test]
    fn audit_runs_on_small_compound_count() {
        assert!(dispatch(&argv(&[
            "audit",
            "--compounds",
            "2",
            "MEM_INST_RETIRED_ALL_STORES",
            "ARITH_DIVIDER_COUNT"
        ]))
        .is_ok());
    }

    #[test]
    fn measure_runs_on_app_spec() {
        assert!(dispatch(&argv(&["measure", "dgemm:4000"])).is_ok());
    }

    #[test]
    fn collect_runs() {
        assert!(dispatch(&argv(&[
            "collect",
            "--app",
            "dgemm:4000",
            "UOPS_EXECUTED_CORE",
            "MEM_INST_RETIRED_ALL_STORES"
        ]))
        .is_ok());
    }

    #[test]
    fn online_trains_and_estimates() {
        assert!(dispatch(&argv(&[
            "online",
            "--train",
            "dgemm:4000,dgemm:6000,fft:23000,fft:25000",
            "--events",
            "UOPS_EXECUTED_CORE,FP_ARITH_INST_RETIRED_DOUBLE,MEM_INST_RETIRED_ALL_STORES",
            "dgemm:5000"
        ]))
        .is_ok());
    }

    #[test]
    fn online_rejects_multi_run_event_sets() {
        let err = dispatch(&argv(&[
            "online",
            "--train",
            "dgemm:4000,fft:23000",
            "--events",
            "ARITH_DIVIDER_COUNT,UOPS_EXECUTED_CORE",
            "dgemm:5000",
        ]))
        .unwrap_err();
        assert!(err.contains("runs"), "{err}");
    }

    #[test]
    fn matrix_runs() {
        assert!(dispatch(&argv(&[
            "matrix",
            "--compounds",
            "2",
            "MEM_INST_RETIRED_ALL_STORES",
            "IDQ_MS_UOPS"
        ]))
        .is_ok());
    }

    #[test]
    fn query_round_trips_against_a_live_server() {
        let service = Arc::new(
            ServiceConfig::default()
                .workers(1)
                .cache_capacity(8)
                .seed(1)
                .build()
                .unwrap(),
        );
        let server = Server::start(service, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        assert!(dispatch(&argv(&["query", "--addr", &addr, "STATS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "MODELS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "METRICS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "SHARDS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "TRACE", "RECENT", "5"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "HEALTH"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "HISTORY"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "HISTORY", "2"])).is_ok());
        // ERR replies are still successful round trips: the reply prints.
        assert!(dispatch(&argv(&[
            "query",
            "--addr",
            &addr,
            "ESTIMATE-APP",
            "skylake",
            "dgemm:9000"
        ]))
        .is_ok());
    }

    #[test]
    fn stream_and_monitor_round_trip_against_a_live_server() {
        let service = Arc::new(
            ServiceConfig::default()
                .workers(1)
                .cache_capacity(8)
                .seed(1)
                .build()
                .unwrap(),
        );
        let server = Server::start(service, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        assert!(dispatch(&argv(&[
            "stream",
            "--addr",
            &addr,
            "--windows",
            "12",
            "--window",
            "8",
            "--label-every",
            "2",
            "cli-test-stream"
        ]))
        .is_ok());
        // The driven stream closed itself; monitor still renders the
        // (now empty) table once. The labelled pushes above populated
        // the calibration tracker, so --health has rows to print.
        assert!(dispatch(&argv(&["monitor", "--addr", &addr, "--iterations", "1"])).is_ok());
        assert!(dispatch(&argv(&[
            "monitor",
            "--addr",
            &addr,
            "--iterations",
            "1",
            "--health"
        ]))
        .is_ok());
        assert!(dispatch(&argv(&["stream", "--addr", "127.0.0.1:1"]))
            .unwrap_err()
            .contains("cannot reach server"));
        assert!(dispatch(&argv(&["stream", "--windows", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(dispatch(&argv(&["monitor", "--interval-ms", "soon"]))
            .unwrap_err()
            .contains("millisecond"));
    }

    #[test]
    fn query_round_trips_against_a_sharded_evented_server() {
        let router = Arc::new(
            ServiceConfig::default()
                .workers(2)
                .cache_capacity(8)
                .seed(1)
                .transport(Transport::Evented)
                .event_loops(2)
                .build_sharded(2)
                .unwrap(),
        );
        let server = Server::start_router(router, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        assert!(dispatch(&argv(&["query", "--addr", &addr, "SHARDS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "STATS"])).is_ok());
        assert!(dispatch(&argv(&["query", "--addr", &addr, "MODELS"])).is_ok());
    }

    #[test]
    fn serve_and_query_report_connection_problems() {
        assert!(dispatch(&argv(&["serve", "--addr", "999.999.999.999:1"]))
            .unwrap_err()
            .contains("bind"));
        let err = dispatch(&argv(&["query", "--addr", "127.0.0.1:1", "STATS"])).unwrap_err();
        assert!(err.contains("cannot reach server"), "{err}");
        assert!(dispatch(&argv(&["query"])).unwrap_err().contains("request"));
        assert!(dispatch(&argv(&["serve", "--workers", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(dispatch(&argv(&["serve", "--cache", "none"]))
            .unwrap_err()
            .contains("positive"));
        assert!(dispatch(&argv(&["serve", "--trace-slow-ms", "soon"]))
            .unwrap_err()
            .contains("millisecond"));
        assert!(dispatch(&argv(&["serve", "--shards", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(dispatch(&argv(&["serve", "--event-loops", "none"]))
            .unwrap_err()
            .contains("positive"));
        assert!(dispatch(&argv(&["serve", "--transport", "quantum"]))
            .unwrap_err()
            .contains("expected threaded or evented"));
    }

    #[test]
    fn helpful_errors() {
        assert!(dispatch(&argv(&["audit"])).unwrap_err().contains("EVENT"));
        assert!(dispatch(&argv(&["collect", "EVENTX"]))
            .unwrap_err()
            .contains("--app"));
        assert!(dispatch(&argv(&["measure", "bogus:1"]))
            .unwrap_err()
            .contains("bogus"));
        assert!(dispatch(&argv(&["specs", "--platform"]))
            .unwrap_err()
            .contains("value"));
        assert!(dispatch(&argv(&["schedule", "--platform", "arm"]))
            .unwrap_err()
            .contains("arm"));
        assert!(dispatch(&argv(&["audit", "NOT_AN_EVENT"]))
            .unwrap_err()
            .contains("NOT_AN_EVENT"));
        assert!(dispatch(&argv(&["online", "dgemm:1000"]))
            .unwrap_err()
            .contains("--train"));
    }
}
