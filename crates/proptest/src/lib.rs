//! In-repo stand-in for the external `proptest` crate.
//!
//! The workspace must build and test **offline**, so it cannot fetch
//! `proptest` from a registry. This crate implements the subset of the
//! proptest API that the workspace's property tests actually use — the
//! [`proptest!`] macro, range/tuple/`prop_map`/collection strategies,
//! `prop_assert*`/`prop_assume!`, and `ProptestConfig::with_cases` — on
//! top of the seeded generators in `pmca_stats::rng`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * cases are drawn from a stream seeded by the *test name*, so every
//!   run explores the same inputs (fully reproducible, no regression
//!   files needed);
//! * there is no shrinking: a failing case panics with the sampled
//!   values' debug representation instead of a minimised counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pmca_stats::rng::Xoshiro256pp;
use std::ops::Range;

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(Xoshiro256pp);

impl TestRng {
    /// Deterministic stream for a named test.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(Xoshiro256pp::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut Xoshiro256pp {
        &mut self.0
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of values for one property argument.
///
/// Unlike the real crate there is no value tree: a strategy just samples.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinators available on every sized strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transform sampled values with `f` (the real crate's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// The strategy returned by [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        use pmca_stats::rng::Rng;
        rng.rng().gen_range_f64(self.start, self.end)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use pmca_stats::rng::Rng;
                // Through i128 so ranges with negative bounds work; for
                // non-negative bounds the arithmetic (and therefore the
                // deterministic sample stream) is unchanged.
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty integer range");
                let span = (hi - lo) as u64;
                let v = i128::from(rng.rng().next_u64() % span) + lo;
                v as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        use pmca_stats::rng::Rng;
        let i = rng.rng().gen_range_usize(0, self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec()`]: an exact length
    /// or a half-open range of lengths.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use pmca_stats::rng::Rng;
            rng.rng().gen_range_usize(self.start, self.end)
        }
    }

    /// A strategy for `Vec<T>` with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            use pmca_stats::rng::Rng;
            rng.rng().next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, StrategyExt, TestRng, Union,
    };
}

/// Define property tests over sampled inputs.
///
/// Supports the real crate's surface shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                // A closure per case so `prop_assume!` can skip via `return`.
                let mut __case_fn = move || $body;
                __case_fn();
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// Assert inside a property body (aborts the whole test on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Box a strategy for use in a [`Union`] (used by [`prop_oneof!`]; a plain
/// function so the element type is inferred without cast annotations).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_honours_size_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = collection::vec(0.0f64..1.0, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = collection::vec(0u32..3, 7usize).sample(&mut rng);
        assert_eq!(fixed.len(), 7);
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::for_test("map");
        let s = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn oneof_uses_every_alternative() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![0.0f64..1.0, 10.0f64..11.0];
        let (mut low, mut high) = (0, 0);
        for _ in 0..200 {
            if s.sample(&mut rng) < 5.0 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 50 && high > 50, "low {low}, high {high}");
    }

    #[test]
    fn bool_any_produces_both() {
        let mut rng = TestRng::for_test("bool");
        let values: Vec<bool> = (0..100)
            .map(|_| crate::bool::ANY.sample(&mut rng))
            .collect();
        assert!(values.iter().any(|&b| b) && values.iter().any(|&b| !b));
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_samples_and_asserts(x in 1.0f64..2.0, n in 1usize..4) {
            prop_assume!(n > 0);
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert_eq!(n.min(3), n);
        }
    }
}
