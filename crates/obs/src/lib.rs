//! Observability substrate for the SLOPE-PMC serving and measurement
//! stack.
//!
//! An always-on energy estimator (the deployment scenario the paper's
//! Class C ≤ 4-PMC models exist for) must account for its own overhead:
//! where request time goes, what the caches earn, what training and
//! simulated collection cost. This crate is the plumbing for that —
//! `std`-only, no external dependencies, lock-free on the recording hot
//! path:
//!
//! - [`MetricsRegistry`] — a namespace of named instruments with
//!   get-or-register semantics and a process-global default
//!   ([`MetricsRegistry::global`]). Registration locks; recording never
//!   does.
//! - [`Counter`] / [`Gauge`] — single-atomic event counts and values.
//! - [`Histogram`] — log₂-bucketed latency distributions with
//!   p50/p95/p99/max readout; recording is a few relaxed atomic adds.
//! - [`Span`] — scoped timers that record into a histogram on drop and
//!   nest to attribute time across layers (total vs. exclusive time).
//! - [`MetricsRegistry::render`] — Prometheus-style text exposition
//!   (`name{label="v"} value`), served by the `METRICS` protocol
//!   command.
//! - [`trace`] — per-request tracing: structured begin/end/instant
//!   events with attributes, a fixed-capacity flight recorder of the
//!   last N completed request traces, slow-request capture over a
//!   latency threshold, and JSONL rendering served by the `TRACE`
//!   protocol command. [`TraceSpan`] is the tracing twin of [`Span`]:
//!   inert (zero clock reads) when no trace is in scope.
//! - [`health`] — model-health monitoring: per-platform calibration
//!   trackers (rolling MAE/MPE, empirical prediction-interval coverage,
//!   two-sided CUSUM / Page–Hinkley drift scores driving an
//!   `Ok → Degraded → Drifting` state machine), per-counter
//!   additivity-violation rates, and a fixed-capacity [`HistoryRing`]
//!   of registry snapshots with per-metric deltas — served by the
//!   `HEALTH` and `HISTORY` protocol commands.
//! - [`log`] — a minimal leveled structured-logging facade
//!   (`key=value` lines to stderr, `PMCA_LOG` env override) for
//!   process lifecycle events.
//!
//! # Naming convention
//!
//! `pmca_<layer>_<what>_<unit>`: `pmca_serve_command_seconds`,
//! `pmca_cache_hits_total`, `pmca_sim_run_seconds`. Histogram names end
//! in `_seconds`; counters in `_total`. Label keys are fixed per metric
//! (`command`, `kind`, `result`, `family`).
//!
//! # Examples
//!
//! ```
//! use pmca_obs::{MetricsRegistry, Span};
//!
//! let registry = MetricsRegistry::new();
//! let hits = registry.counter("pmca_demo_hits_total", &[]);
//! let latency = registry.histogram("pmca_demo_seconds", &[("command", "demo")]);
//! {
//!     let _span = Span::enter(&latency);
//!     hits.inc();
//! }
//! assert_eq!(hits.get(), 1);
//! assert_eq!(latency.count(), 1);
//! assert!(registry.render().iter().any(|l| l.starts_with("pmca_demo_hits_total ")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod log;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use health::{
    AdditivitySnapshot, CalibrationSnapshot, HealthConfig, HealthRegistry, HealthState,
    HealthTransition, HistoryEntry, HistoryRing, HistorySnapshot,
};
pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{MetricId, MetricsRegistry};
pub use span::Span;
pub use trace::{ActiveTrace, Trace, TraceEvent, TraceSpan, Tracer, TracerConfig};
