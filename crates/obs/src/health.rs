//! Model-health monitoring: calibration, drift, additivity, history.
//!
//! The serving stack's accuracy story rests on two claims that only hold
//! *at training time* unless something keeps checking them: that the
//! deployed model's errors stay small and its prediction intervals keep
//! their nominal coverage, and that the platform's PMC event set stays
//! additive under production workloads. This module is the bookkeeping
//! for both, plus a windowed snapshot ring that turns the metrics
//! registry into a short time series:
//!
//! - [`HealthRegistry`] — per-platform calibration trackers fed one
//!   `(predicted, half_width, measured)` triple per labelled window or
//!   training holdout row. Each tracker keeps rolling MAE / MPE /
//!   empirical 95%-PI coverage over a fixed window, plus two-sided CUSUM
//!   and Page–Hinkley drift scores over the relative residuals. Drift
//!   crossing the configured thresholds walks the
//!   [`HealthState`] machine `Ok → Degraded → Drifting` (and back down
//!   as the scores recover); every transition is returned to the caller
//!   so serving layers can emit flight-recorder events or trigger
//!   refits.
//! - Per-counter **additivity-violation rates**
//!   ([`HealthRegistry::observe_additivity`]): the paper's equation-1
//!   compound-vs-sum error, checked online, folded into a violation
//!   rate per `(platform, counter)`.
//! - [`HistoryRing`] — a fixed-capacity ring of registry snapshots with
//!   per-metric deltas against the previous snapshot, the backing store
//!   of the `HISTORY` protocol verb.
//!
//! Everything here is `std`-only and never reads a clock: snapshots are
//! ordered by a sequence number, and a disabled registry answers
//! [`HealthRegistry::observe`] with a single relaxed atomic load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Health of one platform's deployed model, worst-first ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Drift scores below every threshold.
    Ok,
    /// Drift scores past the degraded threshold: accuracy is slipping.
    Degraded,
    /// Drift scores past the drifting threshold: the model no longer
    /// matches the stream and should be refit.
    Drifting,
}

impl HealthState {
    /// Wire name (`ok` / `degraded` / `drifting`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Drifting => "drifting",
        }
    }

    /// Parse a wire name back into a state.
    pub fn parse(text: &str) -> Option<HealthState> {
        match text {
            "ok" => Some(HealthState::Ok),
            "degraded" => Some(HealthState::Degraded),
            "drifting" => Some(HealthState::Drifting),
            _ => None,
        }
    }
}

/// Tuning for the calibration trackers.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Rolling-window capacity in samples for MAE/MPE/coverage.
    pub window: usize,
    /// Nominal prediction-interval coverage the empirical rate is
    /// compared against (reporting only; 0.95 by construction upstream).
    pub coverage_target: f64,
    /// Drift-detector drift magnitude tolerance on the relative
    /// residual: deviations smaller than this never accumulate.
    pub drift_tolerance: f64,
    /// Drift score past which the state is [`HealthState::Degraded`].
    pub degraded_threshold: f64,
    /// Drift score past which the state is [`HealthState::Drifting`].
    pub drifting_threshold: f64,
    /// Samples a tracker must see before it may leave
    /// [`HealthState::Ok`] — keeps a cold model from flapping.
    pub min_samples: u64,
}

impl Default for HealthConfig {
    /// 128-sample windows, 95% nominal coverage, 2% residual tolerance,
    /// degraded at a cumulative score of 1.0, drifting at 2.5, after at
    /// least 8 samples.
    fn default() -> Self {
        HealthConfig {
            window: 128,
            coverage_target: 0.95,
            drift_tolerance: 0.02,
            degraded_threshold: 1.0,
            drifting_threshold: 2.5,
            min_samples: 8,
        }
    }
}

/// A state change returned by [`HealthRegistry::observe`], for callers
/// that emit flight-recorder events or trigger refits.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTransition {
    /// Platform whose tracker changed state.
    pub platform: String,
    /// Model version of the observation that caused the change.
    pub version: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// The drift score that caused the change.
    pub score: f64,
}

/// Point-in-time calibration readout for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSnapshot {
    /// Platform (lowercased upstream).
    pub platform: String,
    /// Model version of the most recent observation.
    pub version: u64,
    /// Lifetime observations.
    pub samples: u64,
    /// Rolling mean absolute error, joules.
    pub mae: f64,
    /// Rolling mean percentage error, percent, signed (negative means
    /// the model under-predicts).
    pub mpe: f64,
    /// Empirical prediction-interval coverage over interval-bearing
    /// samples in the window (0 when no sample carried an interval).
    pub coverage: f64,
    /// Window samples that carried a positive interval half-width.
    pub covered_samples: u64,
    /// Two-sided CUSUM score over relative residuals.
    pub cusum: f64,
    /// Two-sided Page–Hinkley score over relative residuals.
    pub page_hinkley: f64,
    /// Current health state.
    pub state: HealthState,
}

/// Point-in-time additivity readout for one `(platform, counter)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdditivitySnapshot {
    /// Platform (lowercased upstream).
    pub platform: String,
    /// PMC name.
    pub counter: String,
    /// Compound-vs-sum checks performed.
    pub checks: u64,
    /// Checks whose equation-1 error exceeded the tolerance.
    pub violations: u64,
    /// `violations / checks` (0 when no checks ran).
    pub rate: f64,
    /// Largest equation-1 error seen, percent.
    pub worst_error_pct: f64,
}

/// One calibration sample retained in the rolling window.
#[derive(Debug, Clone, Copy)]
struct WindowSample {
    abs_err: f64,
    pct_err: f64,
    /// `None` when the observation carried no interval (half-width 0).
    covered: Option<bool>,
}

/// Per-platform calibration state. All math runs under the tracker's
/// mutex; there is no clock anywhere.
#[derive(Debug)]
struct CalTracker {
    version: u64,
    samples: u64,
    /// Samples that fed the drift detectors — baseline observations
    /// (e.g. training-time holdout pairs) count toward accuracy and
    /// coverage but not toward drift evidence.
    drift_samples: u64,
    window: Vec<WindowSample>,
    next: usize,
    // Two-sided CUSUM over relative residuals.
    cusum_up: f64,
    cusum_down: f64,
    // Page–Hinkley: running mean plus cumulative deviations and their
    // extrema for the upward and downward tests.
    mean: f64,
    ph_up: f64,
    ph_up_min: f64,
    ph_down: f64,
    ph_down_max: f64,
    state: HealthState,
}

impl CalTracker {
    fn new() -> Self {
        CalTracker {
            version: 0,
            samples: 0,
            drift_samples: 0,
            window: Vec::new(),
            next: 0,
            cusum_up: 0.0,
            cusum_down: 0.0,
            mean: 0.0,
            ph_up: 0.0,
            ph_up_min: 0.0,
            ph_down: 0.0,
            ph_down_max: 0.0,
            state: HealthState::Ok,
        }
    }

    fn cusum(&self) -> f64 {
        self.cusum_up.max(self.cusum_down)
    }

    fn page_hinkley(&self) -> f64 {
        (self.ph_up - self.ph_up_min).max(self.ph_down_max - self.ph_down)
    }

    fn score(&self) -> f64 {
        self.cusum().max(self.page_hinkley())
    }

    fn observe(&mut self, config: &HealthConfig, sample: WindowSample, drift: bool) {
        self.samples += 1;
        if self.window.len() < config.window {
            self.window.push(sample);
        } else {
            self.window[self.next] = sample;
            self.next = (self.next + 1) % config.window.max(1);
        }
        if !drift {
            return;
        }
        // Drift detectors run on the relative residual so platforms with
        // very different energy scales share one set of thresholds.
        self.drift_samples += 1;
        let x = sample.pct_err / 100.0;
        let k = config.drift_tolerance;
        self.cusum_up = (self.cusum_up + x - k).max(0.0);
        self.cusum_down = (self.cusum_down - x - k).max(0.0);
        #[allow(clippy::cast_precision_loss)] // sample index, far below 2^52
        let n = self.drift_samples as f64;
        self.mean += (x - self.mean) / n;
        self.ph_up += x - self.mean - k;
        self.ph_up_min = self.ph_up_min.min(self.ph_up);
        self.ph_down += x - self.mean + k;
        self.ph_down_max = self.ph_down_max.max(self.ph_down);
    }

    fn next_state(&self, config: &HealthConfig) -> HealthState {
        if self.samples < config.min_samples {
            return HealthState::Ok;
        }
        let score = self.score();
        if score >= config.drifting_threshold {
            HealthState::Drifting
        } else if score >= config.degraded_threshold {
            HealthState::Degraded
        } else {
            HealthState::Ok
        }
    }

    fn snapshot(&self, platform: &str) -> CalibrationSnapshot {
        let mut abs_sum = 0.0;
        let mut pct_sum = 0.0;
        let mut covered = 0u64;
        let mut with_interval = 0u64;
        for sample in &self.window {
            abs_sum += sample.abs_err;
            pct_sum += sample.pct_err;
            if let Some(hit) = sample.covered {
                with_interval += 1;
                covered += u64::from(hit);
            }
        }
        #[allow(clippy::cast_precision_loss)] // window is small
        let n = self.window.len().max(1) as f64;
        #[allow(clippy::cast_precision_loss)]
        let coverage = if with_interval == 0 {
            0.0
        } else {
            covered as f64 / with_interval as f64
        };
        CalibrationSnapshot {
            platform: platform.to_string(),
            version: self.version,
            samples: self.samples,
            mae: abs_sum / n,
            mpe: pct_sum / n,
            coverage,
            covered_samples: with_interval,
            cusum: self.cusum(),
            page_hinkley: self.page_hinkley(),
            state: self.state,
        }
    }
}

/// Per-`(platform, counter)` additivity state.
#[derive(Debug, Default)]
struct AddTracker {
    checks: u64,
    violations: u64,
    worst_error_pct: f64,
}

/// Calibration, drift, and additivity bookkeeping for a set of
/// platforms. Shared as `Arc<HealthRegistry>` between a service and its
/// stream hub; a disabled registry ignores every observation after one
/// atomic load and holds no state.
#[derive(Debug)]
pub struct HealthRegistry {
    enabled: AtomicBool,
    config: HealthConfig,
    calibration: Mutex<HashMap<String, CalTracker>>,
    additivity: Mutex<HashMap<(String, String), AddTracker>>,
    transitions: AtomicU64,
}

impl Default for HealthRegistry {
    fn default() -> Self {
        HealthRegistry::new(HealthConfig::default())
    }
}

impl HealthRegistry {
    /// An enabled registry with the given tuning.
    pub fn new(config: HealthConfig) -> Self {
        HealthRegistry {
            enabled: AtomicBool::new(true),
            config,
            calibration: Mutex::new(HashMap::new()),
            additivity: Mutex::new(HashMap::new()),
            transitions: AtomicU64::new(0),
        }
    }

    /// A registry that drops every observation — the opt-out path, one
    /// relaxed load per call and zero retained state.
    pub fn disabled() -> Self {
        let registry = HealthRegistry::new(HealthConfig::default());
        registry.enabled.store(false, Ordering::Relaxed);
        registry
    }

    /// Whether observations are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The tuning in force.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Health-state transitions since startup, across all platforms.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Fold one out-of-sample observation into `platform`'s tracker:
    /// `predicted ± half_width` against the `measured` label. Returns a
    /// transition when the drift scores moved the health state.
    pub fn observe(
        &self,
        platform: &str,
        version: u64,
        predicted: f64,
        half_width: f64,
        measured: f64,
    ) -> Option<HealthTransition> {
        self.fold(platform, version, predicted, half_width, measured, true)
    }

    /// Record a baseline calibration pair — typically a training-time
    /// holdout residual — that seeds the accuracy and coverage view
    /// without counting as drift evidence. In-sample fit error is
    /// systematic, so letting it feed the CUSUM/Page-Hinkley detectors
    /// would flag a freshly trained model as drifting before it served
    /// a single live window.
    pub fn observe_baseline(
        &self,
        platform: &str,
        version: u64,
        predicted: f64,
        half_width: f64,
        measured: f64,
    ) {
        self.fold(platform, version, predicted, half_width, measured, false);
    }

    fn fold(
        &self,
        platform: &str,
        version: u64,
        predicted: f64,
        half_width: f64,
        measured: f64,
        drift: bool,
    ) -> Option<HealthTransition> {
        if !self.is_enabled() {
            return None;
        }
        if !predicted.is_finite() || !measured.is_finite() {
            return None;
        }
        let residual = predicted - measured;
        // Percentage error against the measurement, with a floor so a
        // zero-energy label cannot blow the percentage up to infinity.
        let base = measured.abs().max(f64::MIN_POSITIVE.max(1e-12));
        let sample = WindowSample {
            abs_err: residual.abs(),
            pct_err: 100.0 * residual / base,
            covered: (half_width > 0.0).then(|| residual.abs() <= half_width),
        };
        let mut trackers = self.calibration.lock().expect("calibration poisoned");
        let tracker = trackers
            .entry(platform.to_string())
            .or_insert_with(CalTracker::new);
        tracker.version = version;
        tracker.observe(&self.config, sample, drift);
        if !drift {
            return None;
        }
        let next = tracker.next_state(&self.config);
        if next == tracker.state {
            return None;
        }
        let from = tracker.state;
        tracker.state = next;
        self.transitions.fetch_add(1, Ordering::Relaxed);
        Some(HealthTransition {
            platform: platform.to_string(),
            version,
            from,
            to: next,
            score: tracker.score(),
        })
    }

    /// Fold one online compound-vs-sum check for `counter` on
    /// `platform`: `error_pct` is the paper's equation-1 error, a
    /// violation when it exceeds `tolerance_pct`.
    pub fn observe_additivity(
        &self,
        platform: &str,
        counter: &str,
        error_pct: f64,
        tolerance_pct: f64,
    ) {
        if !self.is_enabled() || !error_pct.is_finite() {
            return;
        }
        let mut trackers = self.additivity.lock().expect("additivity poisoned");
        let tracker = trackers
            .entry((platform.to_string(), counter.to_string()))
            .or_default();
        tracker.checks += 1;
        tracker.violations += u64::from(error_pct > tolerance_pct);
        tracker.worst_error_pct = tracker.worst_error_pct.max(error_pct);
    }

    /// Calibration readouts, sorted by platform.
    pub fn calibration(&self) -> Vec<CalibrationSnapshot> {
        let trackers = self.calibration.lock().expect("calibration poisoned");
        let mut snapshots: Vec<CalibrationSnapshot> = trackers
            .iter()
            .map(|(platform, tracker)| tracker.snapshot(platform))
            .collect();
        snapshots.sort_by(|a, b| a.platform.cmp(&b.platform));
        snapshots
    }

    /// Additivity readouts, sorted by platform then counter.
    pub fn additivity(&self) -> Vec<AdditivitySnapshot> {
        let trackers = self.additivity.lock().expect("additivity poisoned");
        let mut snapshots: Vec<AdditivitySnapshot> = trackers
            .iter()
            .map(|((platform, counter), tracker)| AdditivitySnapshot {
                platform: platform.clone(),
                counter: counter.clone(),
                checks: tracker.checks,
                violations: tracker.violations,
                #[allow(clippy::cast_precision_loss)]
                rate: if tracker.checks == 0 {
                    0.0
                } else {
                    tracker.violations as f64 / tracker.checks as f64
                },
                worst_error_pct: tracker.worst_error_pct,
            })
            .collect();
        snapshots.sort_by(|a, b| (&a.platform, &a.counter).cmp(&(&b.platform, &b.counter)));
        snapshots
    }
}

/// One metric's reading inside a [`HistorySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Exposition id (`name{label="v"}` or a quantile/`_count` line id).
    pub metric: String,
    /// Value at snapshot time.
    pub value: f64,
    /// Change since the previous snapshot (the value itself for a
    /// metric's first appearance).
    pub delta: f64,
}

/// One windowed snapshot of the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySnapshot {
    /// Monotonic snapshot sequence number, from 1.
    pub seq: u64,
    /// Per-metric readings, in the sampled order.
    pub entries: Vec<HistoryEntry>,
}

/// A fixed-capacity ring of [`HistorySnapshot`]s with per-metric deltas
/// against the previous snapshot — a short time series over whatever
/// sampler feeds it (the serving stack feeds it
/// `MetricsRegistry::sample`). No clocks: ordering is the sequence
/// number, and the cadence is whatever the caller's is.
#[derive(Debug)]
pub struct HistoryRing {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

#[derive(Debug, Default)]
struct HistoryInner {
    seq: u64,
    /// Last raw reading per metric, the delta baseline.
    last: HashMap<String, f64>,
    snapshots: Vec<HistorySnapshot>,
}

impl HistoryRing {
    /// A ring retaining at most `capacity` snapshots (min 2 — a ring
    /// that cannot hold a delta pair is useless).
    pub fn new(capacity: usize) -> Self {
        HistoryRing {
            capacity: capacity.max(2),
            inner: Mutex::new(HistoryInner::default()),
        }
    }

    /// Snapshot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one snapshot from `(metric, value)` samples; returns its
    /// sequence number. The oldest snapshot falls off past capacity.
    pub fn record(&self, samples: &[(String, f64)]) -> u64 {
        let mut inner = self.inner.lock().expect("history poisoned");
        inner.seq += 1;
        let seq = inner.seq;
        let entries = samples
            .iter()
            .map(|(metric, value)| HistoryEntry {
                metric: metric.clone(),
                value: *value,
                delta: value - inner.last.get(metric).copied().unwrap_or(0.0),
            })
            .collect();
        for (metric, value) in samples {
            inner.last.insert(metric.clone(), *value);
        }
        inner.snapshots.push(HistorySnapshot { seq, entries });
        if inner.snapshots.len() > self.capacity {
            inner.snapshots.remove(0);
        }
        seq
    }

    /// Snapshots recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("history poisoned").snapshots.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The newest `limit` retained snapshots, oldest first.
    pub fn snapshots(&self, limit: usize) -> Vec<HistorySnapshot> {
        let inner = self.inner.lock().expect("history poisoned");
        let skip = inner.snapshots.len().saturating_sub(limit);
        inner.snapshots[skip..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_n(registry: &HealthRegistry, n: usize, predicted: f64, measured: f64) {
        for _ in 0..n {
            registry.observe("skylake", 3, predicted, 1.0, measured);
        }
    }

    #[test]
    fn accurate_predictions_stay_ok_with_full_coverage() {
        let registry = HealthRegistry::default();
        observe_n(&registry, 50, 100.0, 100.5);
        let cal = registry.calibration();
        assert_eq!(cal.len(), 1);
        let c = &cal[0];
        assert_eq!(c.platform, "skylake");
        assert_eq!(c.version, 3);
        assert_eq!(c.samples, 50);
        assert!((c.mae - 0.5).abs() < 1e-9, "mae {}", c.mae);
        assert!(c.mpe < 0.0, "under-prediction is negative MPE: {}", c.mpe);
        assert_eq!(c.coverage, 1.0, "residual 0.5 inside half-width 1.0");
        assert_eq!(c.covered_samples, 50);
        assert_eq!(c.state, HealthState::Ok);
        assert!(c.cusum < 1e-9, "0.5% error is inside the 2% tolerance");
    }

    #[test]
    fn baseline_observations_record_calibration_without_drift_evidence() {
        let registry = HealthRegistry::default();
        // A systematic +25% in-sample fit error, far past the drift
        // tolerance — as a baseline feed it must not move the detectors.
        for _ in 0..40 {
            registry.observe_baseline("skylake", 1, 125.0, 1.0, 100.0);
        }
        let cal = registry.calibration();
        assert_eq!(cal.len(), 1);
        let c = &cal[0];
        assert_eq!(c.samples, 40);
        assert!((c.mae - 25.0).abs() < 1e-9, "mae {}", c.mae);
        assert!(c.mpe > 20.0, "baseline still reports accuracy: {}", c.mpe);
        assert_eq!(c.coverage, 0.0, "residual 25 outside half-width 1");
        assert_eq!(c.state, HealthState::Ok);
        assert_eq!(c.cusum, 0.0, "baseline samples are not drift evidence");
        assert_eq!(c.page_hinkley, 0.0);
        assert_eq!(registry.transitions(), 0);
        // Live observations layered on top start the detectors fresh.
        for _ in 0..60 {
            registry.observe("skylake", 1, 120.0, 1.0, 100.0);
        }
        let c = &registry.calibration()[0];
        assert_eq!(c.state, HealthState::Drifting);
        assert_eq!(registry.transitions(), 2);
    }

    #[test]
    fn a_biased_model_walks_ok_degraded_drifting() {
        let registry = HealthRegistry::default();
        let mut states = Vec::new();
        for _ in 0..60 {
            if let Some(t) = registry.observe("skylake", 7, 120.0, 1.0, 100.0) {
                states.push((t.from, t.to));
            }
        }
        assert_eq!(
            states,
            vec![
                (HealthState::Ok, HealthState::Degraded),
                (HealthState::Degraded, HealthState::Drifting),
            ],
            "a +20% bias escalates through both thresholds exactly once"
        );
        assert_eq!(registry.transitions(), 2);
        let c = &registry.calibration()[0];
        assert_eq!(c.state, HealthState::Drifting);
        assert!(c.cusum > 2.5, "cusum accumulates: {}", c.cusum);
        assert_eq!(c.coverage, 0.0, "residual 20 outside half-width 1");
    }

    #[test]
    fn min_samples_gate_holds_early_noise_at_ok() {
        let registry = HealthRegistry::new(HealthConfig {
            min_samples: 100,
            ..HealthConfig::default()
        });
        observe_n(&registry, 50, 200.0, 100.0);
        assert_eq!(registry.calibration()[0].state, HealthState::Ok);
    }

    #[test]
    fn recovery_walks_the_state_back_down() {
        let registry = HealthRegistry::new(HealthConfig {
            window: 16,
            ..HealthConfig::default()
        });
        for _ in 0..40 {
            registry.observe("skylake", 1, 120.0, 1.0, 100.0);
        }
        assert_eq!(registry.calibration()[0].state, HealthState::Drifting);
        // An accurate model drains the CUSUM side; Page–Hinkley decays as
        // the running mean converges back toward zero.
        let mut recovered = false;
        for _ in 0..4000 {
            if let Some(t) = registry.observe("skylake", 2, 100.0, 1.0, 100.0) {
                if t.to == HealthState::Ok {
                    recovered = true;
                }
            }
        }
        assert!(recovered, "{:?}", registry.calibration());
    }

    #[test]
    fn observations_without_intervals_do_not_count_toward_coverage() {
        let registry = HealthRegistry::default();
        registry.observe("haswell", 1, 10.0, 0.0, 10.0);
        registry.observe("haswell", 1, 10.0, 0.0, 10.0);
        let c = &registry.calibration()[0];
        assert_eq!(c.covered_samples, 0);
        assert_eq!(c.coverage, 0.0);
        registry.observe("haswell", 1, 10.0, 1.0, 10.0);
        assert_eq!(registry.calibration()[0].covered_samples, 1);
        assert_eq!(registry.calibration()[0].coverage, 1.0);
    }

    #[test]
    fn disabled_registries_hold_no_state() {
        let registry = HealthRegistry::disabled();
        assert!(!registry.is_enabled());
        assert!(registry.observe("skylake", 1, 500.0, 1.0, 100.0).is_none());
        registry.observe_additivity("skylake", "X", 50.0, 5.0);
        assert!(registry.calibration().is_empty());
        assert!(registry.additivity().is_empty());
    }

    #[test]
    fn additivity_rates_accumulate_per_platform_counter() {
        let registry = HealthRegistry::default();
        registry.observe_additivity("skylake", "UOPS", 2.0, 5.0);
        registry.observe_additivity("skylake", "UOPS", 9.0, 5.0);
        registry.observe_additivity("skylake", "FP", 1.0, 5.0);
        registry.observe_additivity("haswell", "UOPS", 30.0, 5.0);
        let rows = registry.additivity();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            (rows[0].platform.as_str(), rows[0].counter.as_str()),
            ("haswell", "UOPS")
        );
        let skylake_uops = rows
            .iter()
            .find(|r| r.platform == "skylake" && r.counter == "UOPS")
            .unwrap();
        assert_eq!(skylake_uops.checks, 2);
        assert_eq!(skylake_uops.violations, 1);
        assert!((skylake_uops.rate - 0.5).abs() < 1e-12);
        assert!((skylake_uops.worst_error_pct - 9.0).abs() < 1e-12);
    }

    #[test]
    fn history_ring_keeps_deltas_and_drops_past_capacity() {
        let ring = HistoryRing::new(3);
        assert_eq!(ring.capacity(), 3);
        for step in 1..=5u64 {
            #[allow(clippy::cast_precision_loss)]
            let samples = vec![
                ("a_total".to_string(), 10.0 * step as f64),
                ("b".to_string(), 7.0),
            ];
            assert_eq!(ring.record(&samples), step);
        }
        let snapshots = ring.snapshots(usize::MAX);
        assert_eq!(snapshots.len(), 3, "capacity bounds retention");
        assert_eq!(snapshots[0].seq, 3);
        assert_eq!(snapshots[2].seq, 5);
        let newest = &snapshots[2];
        assert_eq!(newest.entries[0].metric, "a_total");
        assert_eq!(newest.entries[0].value, 50.0);
        assert_eq!(newest.entries[0].delta, 10.0, "counter delta per step");
        assert_eq!(newest.entries[1].delta, 0.0, "flat gauge has no delta");
        assert_eq!(ring.snapshots(1).len(), 1);
        assert_eq!(ring.snapshots(1)[0].seq, 5);
    }

    #[test]
    fn first_history_snapshot_baselines_deltas_at_the_value() {
        let ring = HistoryRing::new(4);
        ring.record(&[("x_total".to_string(), 42.0)]);
        let only = &ring.snapshots(10)[0];
        assert_eq!(only.entries[0].delta, 42.0);
    }

    #[test]
    fn health_state_names_round_trip() {
        for state in [
            HealthState::Ok,
            HealthState::Degraded,
            HealthState::Drifting,
        ] {
            assert_eq!(HealthState::parse(state.as_str()), Some(state));
        }
        assert_eq!(HealthState::parse("weird"), None);
        assert!(HealthState::Drifting > HealthState::Degraded);
    }
}
