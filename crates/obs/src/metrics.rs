//! The three instrument kinds: counters, gauges, and log-bucketed
//! latency histograms.
//!
//! Every instrument is a cheap cloneable handle (an `Arc` around atomic
//! state). The recording hot path takes no locks: counters and gauges
//! are single atomic operations, and a histogram record is two or three
//! relaxed atomic adds plus a CAS loop for the running maximum. Reads
//! (`get`, `quantile`, exposition) are relaxed loads and may observe a
//! slightly stale view while writers race — fine for monitoring, which
//! never needs a consistent cut.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of log₂ buckets in a [`Histogram`]: one per power of two of
/// nanoseconds, which spans 1 ns to ~584 years in 64 buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter (registry-less, for tests).
    pub fn standalone() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, cache sizes).
///
/// Stored as the bit pattern of an `f64` in an `AtomicU64`.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A free-standing gauge (registry-less, for tests).
    pub fn standalone() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) via a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramState {
    /// Bucket `i` counts samples whose nanosecond value has
    /// `floor(log2(ns)) == i` — i.e. bucket 0 holds `[0, 2)` ns and
    /// bucket `i > 0` holds `[2^i, 2^(i+1))` ns.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Shared with the owning registry: a disabled registry's histograms
    /// skip span timing entirely.
    enabled: Arc<AtomicBool>,
}

/// A latency distribution with logarithmic buckets and percentile
/// readout.
///
/// Values are recorded in nanoseconds. Bucket boundaries are powers of
/// two, so the relative resolution is a constant factor of two —
/// percentiles are read back with linear interpolation inside the
/// resolved bucket, which keeps the error well under the run-to-run
/// noise of anything worth timing.
#[derive(Debug, Clone)]
pub struct Histogram {
    state: Arc<HistogramState>,
}

/// Index of the bucket holding `ns`.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`, nanoseconds.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i`, nanoseconds (saturating for the
/// last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Histogram {
    pub(crate) fn with_enabled(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            state: Arc::new(HistogramState {
                buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                enabled,
            }),
        }
    }

    /// A free-standing, always-enabled histogram (registry-less, for
    /// tests and ad-hoc timing).
    pub fn standalone() -> Self {
        Histogram::with_enabled(Arc::new(AtomicBool::new(true)))
    }

    /// Whether recording is live. [`crate::Span`] checks this before
    /// reading the clock, so a disabled registry's spans cost one
    /// relaxed load and nothing else.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.state.enabled.load(Ordering::Relaxed)
    }

    /// Record one sample, in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let state = &*self.state;
        state.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        state.count.fetch_add(1, Ordering::Relaxed);
        state.sum_ns.fetch_add(ns, Ordering::Relaxed);
        let mut seen = state.max_ns.load(Ordering::Relaxed);
        while ns > seen {
            match state
                .max_ns
                .compare_exchange_weak(seen, ns, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// Record one sample as a [`Duration`].
    #[inline]
    pub fn record(&self, duration: Duration) {
        self.record_ns(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.state.sum_ns.load(Ordering::Relaxed))
    }

    /// Largest sample seen (exact, not bucket-resolved).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.state.max_ns.load(Ordering::Relaxed))
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.state.sum_ns.load(Ordering::Relaxed) / count)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded distribution,
    /// linearly interpolated inside the resolved bucket and clamped to
    /// the exact observed maximum. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we are after, 1-based.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let in_bucket = self.state.buckets[i].load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = bucket_lower_bound(i) as f64;
                let hi =
                    bucket_upper_bound(i).min(self.state.max_ns.load(Ordering::Relaxed)) as f64;
                let hi = hi.max(lo);
                // Position of the wanted rank inside this bucket, (0, 1].
                let inside = (rank - seen) as f64 / in_bucket as f64;
                let ns = lo + (hi - lo) * inside;
                return Duration::from_nanos(ns as u64);
            }
            seen += in_bucket;
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::standalone();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share state");
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = Gauge::standalone();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) - 1), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i + 1);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let h = Histogram::standalone();
        for ns in [10, 20, 30] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), Duration::from_nanos(60));
        assert_eq!(h.max(), Duration::from_nanos(30));
        assert_eq!(h.mean(), Duration::from_nanos(20));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::standalone();
        // 100 samples spread uniformly over [1000, 1990) ns: all land in
        // the [512, 1024) and [1024, 2048) buckets.
        for i in 0..100u64 {
            h.record_ns(1000 + 10 * i);
        }
        let p50 = h.quantile(0.5).as_nanos() as u64;
        // True p50 is ~1500 ns; log-bucket interpolation must land in the
        // right bucket, i.e. within a factor-of-two band around truth.
        assert!((1024..2048).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).as_nanos() as u64;
        assert!((1024..=1990).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= h.max());
        // Monotone in q.
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
    }

    #[test]
    fn quantiles_pin_known_distributions_exactly() {
        // All four samples share the [1024, 2048) bucket, so the
        // interpolated readout is fully determined: the bucket's lower
        // bound plus rank/in_bucket of the way to the observed max.
        let h = Histogram::standalone();
        for ns in [1024, 1300, 1600, 2000] {
            h.record_ns(ns);
        }
        // p25 → rank 1 of 4: 1024 + 976 * 0.25.
        assert_eq!(h.quantile(0.25), Duration::from_nanos(1268));
        // p50 → rank 2 of 4: 1024 + 976 * 0.5.
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1512));
        // p99 → rank 4 of 4: the observed max exactly, not the bucket's
        // 2048 upper bound.
        assert_eq!(h.quantile(0.99), Duration::from_nanos(2000));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(2000));

        // A two-bucket split pins the rank walk across buckets: one
        // sample in [64, 128), three in [1024, 2048).
        let split = Histogram::standalone();
        for ns in [100, 1024, 1024, 1024] {
            split.record_ns(ns);
        }
        // p25 resolves the low bucket; a lone sample interpolates to the
        // bucket's (max-clamped) upper bound.
        assert_eq!(split.quantile(0.25), Duration::from_nanos(128));
        // p50 → rank 2, second bucket, whose max clamp (1024) pins the
        // readout to the exact repeated sample.
        assert_eq!(split.quantile(0.5), Duration::from_nanos(1024));
        assert_eq!(split.quantile(0.99), Duration::from_nanos(1024));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::standalone();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn single_sample_quantiles_clamp_to_the_sample() {
        let h = Histogram::standalone();
        h.record_ns(1500);
        // Every quantile of a single observation is that observation,
        // up to bucket resolution; the max clamp makes it exact above.
        assert_eq!(h.quantile(1.0), Duration::from_nanos(1500));
        assert!(h.quantile(0.5) <= Duration::from_nanos(1500));
        assert!(h.quantile(0.5) >= Duration::from_nanos(1024));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::standalone();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }
}
