//! Minimal leveled structured logging to stderr.
//!
//! A deliberate subset of the `log`/`tracing` facades, std-only:
//! leveled macros-as-functions emitting one `key=value` line per call,
//! e.g.
//!
//! ```text
//! t=12.042 level=info target=serve msg="connection closed" conn=3 requests=128
//! ```
//!
//! The level is a process-wide atomic, defaulting to `info` and
//! overridable either programmatically ([`set_level`]) or by the
//! `PMCA_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`) read once on first use. A suppressed call costs one
//! relaxed atomic load — cheap enough to leave `debug!`-style calls on
//! hot-ish paths like connection teardown.
//!
//! Values containing spaces, quotes, or `=` are quoted and escaped so
//! the line stays machine-splittable on single spaces.

use std::io::Write as _;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered: `Off < Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Log nothing.
    Off,
    /// Failures the process cannot recover from silently.
    Error,
    /// Unexpected but handled conditions.
    Warn,
    /// Lifecycle events (default).
    Info,
    /// Per-connection / per-request chatter.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            _ => Level::Info,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Level::Off => 0,
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(raw: &str) -> Result<Level, String> {
        match raw.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level {other:?}")),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sentinel meaning "not initialised yet; consult `PMCA_LOG`".
const UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn effective_level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNSET {
        return Level::from_u8(raw);
    }
    let level = std::env::var("PMCA_LOG")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(Level::Info);
    // First caller wins; a concurrent `set_level` may overwrite, which
    // is fine — both are valid orderings of startup.
    let _ = LEVEL.compare_exchange(UNSET, level.to_u8(), Ordering::Relaxed, Ordering::Relaxed);
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Set the process-wide log level, overriding `PMCA_LOG`.
pub fn set_level(level: Level) {
    LEVEL.store(level.to_u8(), Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn level() -> Level {
    effective_level()
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level > Level::Off && level <= effective_level()
}

fn uptime_seconds() -> f64 {
    static STARTED: OnceLock<Instant> = OnceLock::new();
    STARTED.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Quote a value if it contains bytes that would break single-space
/// splitting of the line.
fn format_value(raw: &str) -> String {
    let needs_quoting = raw.is_empty() || raw.contains([' ', '"', '=', '\n', '\r', '\t', '\\']);
    if !needs_quoting {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render one log line without emitting it (exposed for tests and for
/// callers that route lines elsewhere).
pub fn format_line(level: Level, target: &str, message: &str, attrs: &[(&str, &str)]) -> String {
    let mut line = format!(
        "t={:.3} level={} target={} msg={}",
        uptime_seconds(),
        level.as_str(),
        target,
        format_value(message)
    );
    for (key, value) in attrs {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&format_value(value));
    }
    line
}

/// Emit a structured line at `level` if the process level allows it.
pub fn log(level: Level, target: &str, message: &str, attrs: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let line = format_line(level, target, message, attrs);
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

/// Log at `error` level.
pub fn error(target: &str, message: &str, attrs: &[(&str, &str)]) {
    log(Level::Error, target, message, attrs);
}

/// Log at `warn` level.
pub fn warn(target: &str, message: &str, attrs: &[(&str, &str)]) {
    log(Level::Warn, target, message, attrs);
}

/// Log at `info` level.
pub fn info(target: &str, message: &str, attrs: &[(&str, &str)]) {
    log(Level::Info, target, message, attrs);
}

/// Log at `debug` level.
pub fn debug(target: &str, message: &str, attrs: &[(&str, &str)]) {
    log(Level::Debug, target, message, attrs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_round_trip() {
        assert!(Level::Error < Level::Debug);
        for level in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            assert_eq!(level.as_str().parse::<Level>().unwrap(), level);
            assert_eq!(Level::from_u8(level.to_u8()), level);
        }
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn format_line_quotes_awkward_values() {
        let line = format_line(
            Level::Info,
            "serve",
            "connection closed",
            &[("conn", "3"), ("peer", "127.0.0.1:4 weird\"value")],
        );
        assert!(line.contains("level=info"));
        assert!(line.contains("target=serve"));
        assert!(line.contains("msg=\"connection closed\""));
        assert!(line.contains("conn=3"));
        assert!(line.contains("peer=\"127.0.0.1:4 weird\\\"value\""));
    }

    #[test]
    fn enabled_respects_set_level() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }
}
