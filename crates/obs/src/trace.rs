//! Per-request tracing: trace IDs, structured events, a flight
//! recorder, and slow-request capture.
//!
//! Where the metrics half of this crate answers "how is the server
//! doing on aggregate?", this module answers "why was *this* request
//! slow?". Each served request gets an [`ActiveTrace`]: a shared,
//! thread-safe event buffer identified by a process-unique trace id and
//! the id of the connection that originated it. Layers append
//! [`TraceEvent`]s — `begin`/`end` pairs bracketing a stage, or
//! zero-duration `instant` markers — each stamped with nanoseconds
//! since the request started and optional `key=value` attributes.
//!
//! The handle is an `Arc` underneath, so it crosses thread boundaries:
//! the serving engine clones it into the job it pushes down the worker
//! mpsc channel, which is how queue wait gets attributed to the
//! originating request rather than to whichever worker dequeued it.
//! Within a thread, [`scope`] installs the trace as the *current* one
//! so deep substrate code ([`TraceSpan`], [`instant`]) can contribute
//! events without any plumbing through intermediate signatures.
//!
//! Completed traces land in the [`Tracer`]'s [`FlightRecorder`] — a
//! fixed-capacity ring that always holds the last N requests — and,
//! when they exceed the configured latency threshold, in a separate
//! slow-request ring that a burst of fast traffic cannot flush. The
//! single slowest request since startup is additionally pinned. All
//! three are dumped over the wire by the `TRACE` protocol command as
//! JSONL (one event per line; see [`Trace::to_jsonl`]).
//!
//! A disabled tracer follows the same contract as a disabled
//! [`MetricsRegistry`](crate::MetricsRegistry): [`Tracer::start`]
//! returns `None`, no scope is installed, and every [`TraceSpan`] or
//! [`instant`] call collapses to one thread-local check with **zero
//! clock reads** — the serving fast path stays unmeasurably close to
//! the untraced build.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, LineWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on events per trace: a runaway loop (e.g. a TRAIN request
/// sweeping hundreds of simulated runs) degrades to a truncated trace
/// instead of unbounded memory.
const MAX_TRACE_EVENTS: usize = 8192;

/// What kind of moment a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stage opened (paired with a later `End` of the same name).
    Begin,
    /// A stage closed.
    End,
    /// A zero-duration marker (e.g. a cache hit).
    Instant,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }

    fn parse(raw: &str) -> Option<EventKind> {
        match raw {
            "begin" => Some(EventKind::Begin),
            "end" => Some(EventKind::End),
            "instant" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// One structured moment inside a request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stage or marker name, e.g. `engine.queue` or `cache.lookup`.
    pub name: String,
    /// Begin/end/instant.
    pub kind: EventKind,
    /// Nanoseconds since the request trace started.
    pub at_ns: u64,
    /// Free-form `key=value` attributes (e.g. `app=dgemm:11500`).
    pub attrs: Vec<(String, String)>,
}

/// A completed request trace: identity, total latency, and the event
/// stream, ready for rendering or analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Process-unique request id.
    pub id: u64,
    /// Id of the connection that carried the request (0 when the
    /// request did not arrive over a connection, e.g. direct API use).
    pub connection: u64,
    /// Request label, e.g. `estimate` or `train`.
    pub label: String,
    /// End-to-end latency of the request in nanoseconds.
    pub total_ns: u64,
    /// Events in record order (monotone `at_ns` per recording thread).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Render the trace as JSONL: one self-contained JSON object per
    /// event, each repeating the trace identity so a line survives
    /// being separated from its siblings (grep, tail, log shippers).
    ///
    /// Schema per line:
    /// `{"trace":N,"conn":N,"label":S,"total_ns":N,"seq":N,"name":S,"kind":"begin|end|instant","at_ns":N,"attrs":{...}}`
    pub fn to_jsonl(&self) -> Vec<String> {
        self.events
            .iter()
            .enumerate()
            .map(|(seq, event)| {
                let mut line = String::with_capacity(96);
                let _ = write!(
                    line,
                    "{{\"trace\":{},\"conn\":{},\"label\":{},\"total_ns\":{},\"seq\":{},\"name\":{},\"kind\":\"{}\",\"at_ns\":{},\"attrs\":{{",
                    self.id,
                    self.connection,
                    json_string(&self.label),
                    self.total_ns,
                    seq,
                    json_string(&event.name),
                    event.kind.as_str(),
                    event.at_ns,
                );
                for (i, (key, value)) in event.attrs.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{}:{}", json_string(key), json_string(value));
                }
                line.push_str("}}");
                line
            })
            .collect()
    }

    /// Parse a complete JSONL rendering back into a [`Trace`]. Strict
    /// inverse of [`Trace::to_jsonl`]: every line must carry the same
    /// trace identity and the `seq` numbers must match line order.
    pub fn from_jsonl(lines: &[String]) -> Result<Trace, TraceParseError> {
        if lines.is_empty() {
            return Err(TraceParseError::new(0, "empty trace dump"));
        }
        let mut trace: Option<Trace> = None;
        for (index, line) in lines.iter().enumerate() {
            let parsed = parse_event_line(line)
                .map_err(|message| TraceParseError::new(index + 1, &message))?;
            if parsed.seq != index as u64 {
                return Err(TraceParseError::new(
                    index + 1,
                    &format!("seq {} out of order (expected {index})", parsed.seq),
                ));
            }
            match &mut trace {
                None => {
                    trace = Some(Trace {
                        id: parsed.trace,
                        connection: parsed.conn,
                        label: parsed.label,
                        total_ns: parsed.total_ns,
                        events: vec![parsed.event],
                    });
                }
                Some(trace) => {
                    if parsed.trace != trace.id
                        || parsed.conn != trace.connection
                        || parsed.label != trace.label
                        || parsed.total_ns != trace.total_ns
                    {
                        return Err(TraceParseError::new(
                            index + 1,
                            "trace identity differs from the first line",
                        ));
                    }
                    trace.events.push(parsed.event);
                }
            }
        }
        Ok(trace.expect("non-empty input"))
    }

    /// Split a multi-trace JSONL dump (as returned by the `TRACE`
    /// protocol command) into individual traces, preserving dump order.
    /// Lines are grouped by consecutive runs of the same trace id.
    pub fn parse_dump(lines: &[String]) -> Result<Vec<Trace>, TraceParseError> {
        let mut traces = Vec::new();
        let mut group: Vec<String> = Vec::new();
        let mut group_id: Option<u64> = None;
        for line in lines {
            let id = leading_trace_id(line)
                .ok_or_else(|| TraceParseError::new(traces.len() + 1, "missing trace id"))?;
            if group_id != Some(id) && !group.is_empty() {
                traces.push(Trace::from_jsonl(&group)?);
                group.clear();
            }
            group_id = Some(id);
            group.push(line.clone());
        }
        if !group.is_empty() {
            traces.push(Trace::from_jsonl(&group)?);
        }
        Ok(traces)
    }

    /// Total nanoseconds spent in each named stage: `Begin`/`End` pairs
    /// are matched back-to-front per name (supporting repeated stages,
    /// e.g. one `engine.compute` per batch row) and their durations
    /// summed. Instants are skipped. Useful for the "where did the time
    /// go" breakdown loadgen prints for the slowest request.
    pub fn span_durations(&self) -> Vec<(String, u64)> {
        let mut open: HashMap<&str, Vec<u64>> = HashMap::new();
        let mut totals: Vec<(String, u64)> = Vec::new();
        for event in &self.events {
            match event.kind {
                EventKind::Begin => open.entry(&event.name).or_default().push(event.at_ns),
                EventKind::End => {
                    if let Some(begin_ns) = open.get_mut(event.name.as_str()).and_then(Vec::pop) {
                        let elapsed = event.at_ns.saturating_sub(begin_ns);
                        match totals.iter_mut().find(|(name, _)| *name == event.name) {
                            Some((_, total)) => *total += elapsed,
                            None => totals.push((event.name.clone(), elapsed)),
                        }
                    }
                }
                EventKind::Instant => {}
            }
        }
        totals
    }
}

/// Error from [`Trace::from_jsonl`] / [`Trace::parse_dump`]: the 1-based
/// line (or trace group) and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: usize,
    message: String,
}

impl TraceParseError {
    fn new(line: usize, message: &str) -> TraceParseError {
        TraceParseError {
            line,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

// ---------------------------------------------------------------------
// JSON encoding/decoding (hand-rolled; the build is std-only)
// ---------------------------------------------------------------------

/// Encode a string as a JSON string literal (quotes included).
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct ParsedEventLine {
    trace: u64,
    conn: u64,
    label: String,
    total_ns: u64,
    seq: u64,
    event: TraceEvent,
}

/// Cheap peek at the `"trace":N` field that every event line leads
/// with, used to group dump lines without a full parse.
fn leading_trace_id(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"trace\":")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Strict parser for one event line. Field order is fixed (we only ever
/// parse our own rendering), which keeps this a simple cursor walk.
fn parse_event_line(line: &str) -> Result<ParsedEventLine, String> {
    let mut cursor = Cursor::new(line);
    cursor.literal("{")?;
    let trace = cursor.number_field("trace")?;
    cursor.literal(",")?;
    let conn = cursor.number_field("conn")?;
    cursor.literal(",")?;
    let label = cursor.string_field("label")?;
    cursor.literal(",")?;
    let total_ns = cursor.number_field("total_ns")?;
    cursor.literal(",")?;
    let seq = cursor.number_field("seq")?;
    cursor.literal(",")?;
    let name = cursor.string_field("name")?;
    cursor.literal(",")?;
    let kind_raw = cursor.string_field("kind")?;
    let kind = EventKind::parse(&kind_raw).ok_or(format!("unknown event kind {kind_raw:?}"))?;
    cursor.literal(",")?;
    let at_ns = cursor.number_field("at_ns")?;
    cursor.literal(",")?;
    cursor.key("attrs")?;
    cursor.literal("{")?;
    let mut attrs = Vec::new();
    if !cursor.try_literal("}") {
        loop {
            let key = cursor.string()?;
            cursor.literal(":")?;
            let value = cursor.string()?;
            attrs.push((key, value));
            if cursor.try_literal("}") {
                break;
            }
            cursor.literal(",")?;
        }
    }
    cursor.literal("}")?;
    cursor.end()?;
    Ok(ParsedEventLine {
        trace,
        conn,
        label,
        total_ns,
        seq,
        event: TraceEvent {
            name,
            kind,
            at_ns,
            attrs,
        },
    })
}

struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Cursor<'a> {
        Cursor { rest: line }
    }

    fn literal(&mut self, token: &str) -> Result<(), String> {
        self.rest = self
            .rest
            .strip_prefix(token)
            .ok_or_else(|| format!("expected {token:?} at {:?}", head(self.rest)))?;
        Ok(())
    }

    fn try_literal(&mut self, token: &str) -> bool {
        match self.rest.strip_prefix(token) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    fn key(&mut self, name: &str) -> Result<(), String> {
        self.literal(&format!("\"{name}\":"))
    }

    fn number_field(&mut self, name: &str) -> Result<u64, String> {
        self.key(name)?;
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return Err(format!(
                "expected digits for {name:?} at {:?}",
                head(self.rest)
            ));
        }
        self.rest = &self.rest[digits.len()..];
        digits
            .parse()
            .map_err(|_| format!("{name:?} value {digits:?} overflows u64"))
    }

    fn string_field(&mut self, name: &str) -> Result<String, String> {
        self.key(name)?;
        self.string()
    }

    /// Decode a JSON string literal at the cursor.
    fn string(&mut self) -> Result<String, String> {
        self.literal("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (index, c) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_string())?;
            match c {
                '"' => {
                    self.rest = &self.rest[index + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let (_, escaped) = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                    match escaped {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or(format!("bad hex digit {h:?} in \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{code:04x} is not a scalar value"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing bytes {:?}", head(self.rest)))
        }
    }
}

fn head(rest: &str) -> &str {
    &rest[..rest.len().min(16)]
}

// ---------------------------------------------------------------------
// Active traces and the thread-local current-trace scope
// ---------------------------------------------------------------------

/// A live, shared handle to an in-flight request trace. Clone it freely
/// — clones append to the same event buffer — and hand one across the
/// worker channel so off-thread stages land in the right trace.
#[derive(Debug, Clone)]
pub struct ActiveTrace {
    inner: Arc<ActiveInner>,
}

#[derive(Debug)]
struct ActiveInner {
    id: u64,
    connection: u64,
    label: String,
    started: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl ActiveTrace {
    /// This trace's process-unique request id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Nanoseconds elapsed since the trace started.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock().expect("trace events poisoned");
        if events.len() < MAX_TRACE_EVENTS {
            events.push(event);
        }
    }

    /// Record a `Begin` marker for stage `name` now.
    pub fn begin(&self, name: &str, attrs: &[(&str, &str)]) {
        self.push(TraceEvent {
            name: name.to_string(),
            kind: EventKind::Begin,
            at_ns: self.now_ns(),
            attrs: own_attrs(attrs),
        });
    }

    /// Record an `End` marker for stage `name` now.
    pub fn end(&self, name: &str) {
        self.push(TraceEvent {
            name: name.to_string(),
            kind: EventKind::End,
            at_ns: self.now_ns(),
            attrs: Vec::new(),
        });
    }

    /// Record a zero-duration marker now.
    pub fn instant(&self, name: &str, attrs: &[(&str, &str)]) {
        self.push(TraceEvent {
            name: name.to_string(),
            kind: EventKind::Instant,
            at_ns: self.now_ns(),
            attrs: own_attrs(attrs),
        });
    }

    /// Seal the trace: stamp the total latency, append the closing
    /// `request` end marker, and return the immutable [`Trace`].
    fn finish(&self) -> Trace {
        let total_ns = self.now_ns();
        self.push(TraceEvent {
            name: "request".to_string(),
            kind: EventKind::End,
            at_ns: total_ns,
            attrs: Vec::new(),
        });
        let events = self.inner.events.lock().expect("trace events poisoned");
        Trace {
            id: self.inner.id,
            connection: self.inner.connection,
            label: self.inner.label.clone(),
            total_ns,
            events: events.clone(),
        }
    }
}

fn own_attrs(attrs: &[(&str, &str)]) -> Vec<(String, String)> {
    attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

thread_local! {
    /// The trace the current thread is working for, if any.
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Connection id ambient to this thread (set by the server's
    /// per-connection handler so request traces inherit it).
    static CONNECTION: Cell<u64> = const { Cell::new(0) };
    /// Shard index ambient to this thread (set by the shard router's
    /// dispatcher around routed calls so request traces attribute their
    /// stages to the owning shard).
    static SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Install `trace` as the current trace for this thread until the
/// returned guard drops. Passing `None` is a no-op guard, so call
/// sites don't need to branch on whether tracing is live.
pub fn scope(trace: Option<&ActiveTrace>) -> CurrentScope {
    let Some(trace) = trace else {
        return CurrentScope {
            saved: None,
            installed: false,
        };
    };
    let saved = CURRENT.with(|current| current.replace(Some(trace.clone())));
    CurrentScope {
        saved,
        installed: true,
    }
}

/// Guard restoring the previous current trace on drop. See [`scope`].
#[derive(Debug)]
pub struct CurrentScope {
    saved: Option<ActiveTrace>,
    installed: bool,
}

impl Drop for CurrentScope {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|current| *current.borrow_mut() = self.saved.take());
        }
    }
}

/// The current thread's active trace, if one is in scope.
pub fn current() -> Option<ActiveTrace> {
    CURRENT.with(|current| current.borrow().clone())
}

/// Whether a trace is in scope on this thread (one thread-local read;
/// no clock access).
pub fn is_active() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

/// Record an instant marker on the current trace, if any. The
/// no-trace path is one thread-local check — attribute formatting is
/// skipped entirely, so pass borrowed values.
pub fn instant(name: &str, attrs: &[(&str, &str)]) {
    CURRENT.with(|current| {
        if let Some(trace) = current.borrow().as_ref() {
            trace.instant(name, attrs);
        }
    });
}

/// Mark this thread as serving connection `id` until the guard drops.
/// Traces started on the thread inherit the id.
pub fn connection_scope(id: u64) -> ConnectionScope {
    let saved = CONNECTION.with(|connection| connection.replace(id));
    ConnectionScope { saved }
}

/// Guard restoring the previous ambient connection id on drop.
#[derive(Debug)]
pub struct ConnectionScope {
    saved: u64,
}

impl Drop for ConnectionScope {
    fn drop(&mut self) {
        CONNECTION.with(|connection| connection.set(self.saved));
    }
}

/// Mark this thread as working for shard `index` until the guard
/// drops. Traces started on the thread carry a `shard` attribute on
/// their `request` begin event, so `TRACE` output attributes every
/// stage to the owning shard in a `--shards N` deployment.
pub fn shard_scope(index: usize) -> ShardScope {
    let saved = SHARD.with(|shard| shard.replace(Some(index)));
    ShardScope { saved }
}

/// Guard restoring the previous ambient shard index on drop.
#[derive(Debug)]
pub struct ShardScope {
    saved: Option<usize>,
}

impl Drop for ShardScope {
    fn drop(&mut self) {
        SHARD.with(|shard| shard.set(self.saved));
    }
}

/// A scoped stage timer on the *current* trace: records `Begin` on
/// entry and `End` on drop. When no trace is in scope the constructor
/// returns an inert value — one thread-local check, zero clock reads —
/// mirroring the disabled-[`Span`](crate::Span) contract.
#[derive(Debug)]
pub struct TraceSpan {
    inner: Option<(ActiveTrace, &'static str)>,
}

impl TraceSpan {
    /// Open a stage named `name` on the current trace, if any.
    pub fn enter(name: &'static str) -> TraceSpan {
        TraceSpan::with_attrs(name, &[])
    }

    /// Open a stage with attributes on its `Begin` event. Attributes
    /// are only materialised when a trace is actually in scope.
    pub fn with_attrs(name: &'static str, attrs: &[(&str, &str)]) -> TraceSpan {
        let Some(trace) = current() else {
            return TraceSpan { inner: None };
        };
        trace.begin(name, attrs);
        TraceSpan {
            inner: Some((trace, name)),
        }
    }

    /// Whether this span is live (a trace was in scope at entry).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((trace, name)) = self.inner.take() {
            trace.end(name);
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Fixed-capacity ring of completed traces. Lock-minimal: the write
/// cursor is a single `fetch_add`, and each slot has its own mutex, so
/// concurrent recorders only contend when they hash to the same slot.
/// Slots hold `Arc<Trace>` — a snapshot clones the Arcs, never the
/// traces, so readers can't observe a torn trace.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    next: AtomicUsize,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` traces (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of traces the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record a completed trace, evicting the oldest when full.
    pub fn record(&self, trace: Arc<Trace>) {
        let index = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[index].lock().expect("recorder slot poisoned") = Some(trace);
    }

    /// Snapshot the ring's contents, oldest first. Each entry is a
    /// complete trace (the Arc was stored in one slot assignment).
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        let len = self.slots.len();
        let cursor = self.next.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(len);
        for offset in 0..len {
            let index = (cursor + offset) % len;
            let slot = self.slots[index].lock().expect("recorder slot poisoned");
            if let Some(trace) = slot.as_ref() {
                out.push(Arc::clone(trace));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

/// Configuration for a [`Tracer`]. All knobs have serving-friendly
/// defaults; `build` only fails when the JSONL sink path can't be
/// opened.
#[derive(Debug, Clone, Default)]
pub struct TracerConfig {
    capacity: Option<usize>,
    slow_capacity: Option<usize>,
    slow_threshold: Option<Duration>,
    log_path: Option<PathBuf>,
}

impl TracerConfig {
    /// Start from defaults (recent ring 64, slow ring 16, no slow
    /// threshold, no JSONL sink).
    pub fn new() -> TracerConfig {
        TracerConfig::default()
    }

    /// Capacity of the recent-traces flight recorder (default 64).
    pub fn capacity(mut self, capacity: usize) -> TracerConfig {
        self.capacity = Some(capacity);
        self
    }

    /// Capacity of the slow-traces ring (default 16).
    pub fn slow_capacity(mut self, capacity: usize) -> TracerConfig {
        self.slow_capacity = Some(capacity);
        self
    }

    /// Latency threshold above which a request's full trace is retained
    /// in the slow ring (and written to the sink, if configured).
    pub fn slow_threshold(mut self, threshold: Duration) -> TracerConfig {
        self.slow_threshold = Some(threshold);
        self
    }

    /// Append completed slow traces as JSONL to this file. With no slow
    /// threshold configured, *every* trace is written.
    pub fn log_path(mut self, path: PathBuf) -> TracerConfig {
        self.log_path = Some(path);
        self
    }

    /// Build the tracer; opens (appends to) the JSONL sink if set.
    pub fn build(self) -> io::Result<Tracer> {
        let sink = match self.log_path {
            Some(path) => {
                let file = File::options().create(true).append(true).open(path)?;
                Some(Mutex::new(LineWriter::new(file)))
            }
            None => None,
        };
        Ok(Tracer {
            inner: Some(Arc::new(TracerInner {
                recent: FlightRecorder::new(self.capacity.unwrap_or(64)),
                slow: FlightRecorder::new(self.slow_capacity.unwrap_or(16)),
                slow_threshold: self.slow_threshold,
                slowest: Mutex::new(None),
                next_trace: AtomicU64::new(1),
                next_connection: AtomicU64::new(1),
                sink,
            })),
        })
    }
}

#[derive(Debug)]
struct TracerInner {
    recent: FlightRecorder,
    slow: FlightRecorder,
    slow_threshold: Option<Duration>,
    /// The single slowest request seen since startup.
    slowest: Mutex<Option<Arc<Trace>>>,
    next_trace: AtomicU64,
    next_connection: AtomicU64,
    sink: Option<Mutex<LineWriter<File>>>,
}

/// Front end for request tracing: hands out trace ids, collects
/// completed traces into the flight recorder / slow ring / slowest
/// pin, and writes the JSONL sink. Cheap to clone (`Arc` underneath).
///
/// A tracer built with [`Tracer::disabled`] never starts traces, so
/// every downstream [`TraceSpan`]/[`instant`] collapses to a
/// thread-local check with no clock reads.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing and starts no traces.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records traces.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocate a connection id for a newly accepted connection.
    /// (Works on a disabled tracer too — ids are also used for logs.)
    pub fn next_connection(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.next_connection.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Start a trace for a request labelled `label` (e.g. `estimate`).
    /// Returns `None` on a disabled tracer. The trace inherits the
    /// thread's ambient connection id (see [`connection_scope`]) and
    /// shard index (see [`shard_scope`]), and opens with a `request`
    /// begin event carrying `attrs`.
    pub fn start(&self, label: &str, attrs: &[(&str, &str)]) -> Option<ActiveTrace> {
        let inner = self.inner.as_ref()?;
        let trace = ActiveTrace {
            inner: Arc::new(ActiveInner {
                id: inner.next_trace.fetch_add(1, Ordering::Relaxed),
                connection: CONNECTION.with(Cell::get),
                label: label.to_string(),
                started: Instant::now(),
                events: Mutex::new(Vec::with_capacity(16)),
            }),
        };
        let mut attrs = own_attrs(attrs);
        if let Some(index) = SHARD.with(Cell::get) {
            attrs.push(("shard".to_string(), index.to_string()));
        }
        trace.push(TraceEvent {
            name: "request".to_string(),
            kind: EventKind::Begin,
            at_ns: 0,
            attrs,
        });
        Some(trace)
    }

    /// Seal `trace` and file it: always into the recent ring, into the
    /// slow ring when over the threshold, pinned if it is the slowest
    /// so far, and appended to the JSONL sink when one is configured
    /// (every trace with no threshold, slow traces otherwise).
    pub fn finish(&self, trace: &ActiveTrace) {
        let Some(inner) = &self.inner else { return };
        let completed = Arc::new(trace.finish());
        let is_slow = match inner.slow_threshold {
            Some(threshold) => completed.total_ns >= threshold.as_nanos() as u64,
            None => false,
        };
        if is_slow {
            inner.slow.record(Arc::clone(&completed));
        }
        {
            let mut slowest = inner.slowest.lock().expect("slowest pin poisoned");
            if slowest
                .as_ref()
                .is_none_or(|s| completed.total_ns > s.total_ns)
            {
                *slowest = Some(Arc::clone(&completed));
            }
        }
        if let Some(sink) = &inner.sink {
            if is_slow || inner.slow_threshold.is_none() {
                let mut writer = sink.lock().expect("trace sink poisoned");
                for line in completed.to_jsonl() {
                    let _ = writeln!(writer, "{line}");
                }
            }
        }
        inner.recent.record(completed);
    }

    /// The most recent completed traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        match &self.inner {
            Some(inner) => inner.recent.snapshot(),
            None => Vec::new(),
        }
    }

    /// Retained slow traces (over the threshold), oldest first.
    pub fn slow(&self) -> Vec<Arc<Trace>> {
        match &self.inner {
            Some(inner) => inner.slow.snapshot(),
            None => Vec::new(),
        }
    }

    /// The slowest request seen since startup, if any completed.
    pub fn slowest(&self) -> Option<Arc<Trace>> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.slowest.lock().expect("slowest pin poisoned").clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        TracerConfig::new().build().expect("in-memory tracer")
    }

    #[test]
    fn traces_collect_events_and_render_jsonl_losslessly() {
        let tracer = tracer();
        let trace = tracer
            .start("estimate", &[("platform", "skylake")])
            .unwrap();
        {
            let _scope = scope(Some(&trace));
            let _span = TraceSpan::enter("engine.compute");
            instant("cache.hit", &[("key", "a=b \"quoted\"\n")]);
        }
        tracer.finish(&trace);
        let completed = tracer.slowest().expect("one trace finished");
        assert_eq!(completed.label, "estimate");
        assert_eq!(completed.events.first().unwrap().name, "request");
        assert_eq!(completed.events.last().unwrap().kind, EventKind::End);
        let lines = completed.to_jsonl();
        let parsed = Trace::from_jsonl(&lines).expect("JSONL parses back");
        assert_eq!(parsed, *completed.as_ref());
    }

    #[test]
    fn span_durations_pair_begin_end_by_name() {
        let trace = Trace {
            id: 1,
            connection: 1,
            label: "estimate".to_string(),
            total_ns: 100,
            events: vec![
                TraceEvent {
                    name: "a".into(),
                    kind: EventKind::Begin,
                    at_ns: 0,
                    attrs: vec![],
                },
                TraceEvent {
                    name: "b".into(),
                    kind: EventKind::Begin,
                    at_ns: 10,
                    attrs: vec![],
                },
                TraceEvent {
                    name: "b".into(),
                    kind: EventKind::End,
                    at_ns: 30,
                    attrs: vec![],
                },
                TraceEvent {
                    name: "a".into(),
                    kind: EventKind::End,
                    at_ns: 90,
                    attrs: vec![],
                },
                TraceEvent {
                    name: "b".into(),
                    kind: EventKind::Begin,
                    at_ns: 90,
                    attrs: vec![],
                },
                TraceEvent {
                    name: "b".into(),
                    kind: EventKind::End,
                    at_ns: 95,
                    attrs: vec![],
                },
            ],
        };
        let durations = trace.span_durations();
        assert_eq!(
            durations,
            vec![("b".to_string(), 25), ("a".to_string(), 90)]
        );
    }

    #[test]
    fn disabled_tracer_starts_nothing_and_spans_are_inert() {
        let tracer = Tracer::disabled();
        assert!(tracer.start("estimate", &[]).is_none());
        assert!(!is_active());
        let span = TraceSpan::enter("engine.compute");
        assert!(!span.is_recording());
        drop(span);
        assert!(tracer.recent().is_empty());
        assert!(tracer.slowest().is_none());
    }

    #[test]
    fn scope_nests_and_restores() {
        let tracer = tracer();
        let outer = tracer.start("outer", &[]).unwrap();
        let inner = tracer.start("inner", &[]).unwrap();
        {
            let _a = scope(Some(&outer));
            assert_eq!(current().unwrap().id(), outer.id());
            {
                let _b = scope(Some(&inner));
                assert_eq!(current().unwrap().id(), inner.id());
                // A `None` scope must not clobber the current trace.
                let _c = scope(None);
                assert_eq!(current().unwrap().id(), inner.id());
            }
            assert_eq!(current().unwrap().id(), outer.id());
        }
        assert!(current().is_none());
    }

    #[test]
    fn shard_scope_attributes_traces_to_the_owning_shard() {
        let tracer = tracer();
        let attributed = {
            let _scope = shard_scope(3);
            tracer
                .start("estimate", &[("platform", "skylake")])
                .unwrap()
        };
        tracer.finish(&attributed);
        let plain = tracer.start("estimate", &[]).unwrap();
        tracer.finish(&plain);
        let recent = tracer.recent();
        let begin_attrs = |trace: &Trace| trace.events[0].attrs.clone();
        assert!(
            begin_attrs(&recent[0])
                .iter()
                .any(|(k, v)| k == "shard" && v == "3"),
            "{recent:?}"
        );
        assert!(
            begin_attrs(&recent[1]).iter().all(|(k, _)| k != "shard"),
            "no ambient shard, no label: {recent:?}"
        );
    }

    #[test]
    fn slow_capture_retains_only_over_threshold_traces() {
        let tracer = TracerConfig::new()
            .slow_threshold(Duration::from_millis(5))
            .build()
            .unwrap();
        let fast = tracer.start("fast", &[]).unwrap();
        tracer.finish(&fast);
        let slow = tracer.start("slow", &[]).unwrap();
        std::thread::sleep(Duration::from_millis(8));
        tracer.finish(&slow);
        let slow_traces = tracer.slow();
        assert_eq!(slow_traces.len(), 1);
        assert_eq!(slow_traces[0].label, "slow");
        assert_eq!(tracer.recent().len(), 2);
        assert_eq!(tracer.slowest().unwrap().label, "slow");
    }

    #[test]
    fn flight_recorder_caps_capacity_and_keeps_newest() {
        let recorder = FlightRecorder::new(3);
        for id in 1..=7u64 {
            recorder.record(Arc::new(Trace {
                id,
                connection: 0,
                label: "t".to_string(),
                total_ns: 0,
                events: Vec::new(),
            }));
        }
        let kept: Vec<u64> = recorder.snapshot().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![5, 6, 7]);
    }

    #[test]
    fn flight_recorder_survives_concurrent_recording() {
        // ISSUE satellite: 8 writers record while a reader snapshots.
        // Every snapshot must contain only complete traces (id encodes
        // the event count) and never exceed capacity.
        let recorder = Arc::new(FlightRecorder::new(16));
        let writers: Vec<_> = (0..8)
            .map(|thread_index| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let events = (thread_index % 4) + 1;
                        let trace = Trace {
                            id: events as u64,
                            connection: thread_index as u64,
                            label: format!("t{thread_index}"),
                            total_ns: i,
                            events: (0..events)
                                .map(|e| TraceEvent {
                                    name: format!("stage{e}"),
                                    kind: EventKind::Instant,
                                    at_ns: e as u64,
                                    attrs: vec![("i".to_string(), i.to_string())],
                                })
                                .collect(),
                        };
                        recorder.record(Arc::new(trace));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let snapshot = recorder.snapshot();
            assert!(snapshot.len() <= 16);
            for trace in snapshot {
                assert_eq!(trace.events.len() as u64, trace.id, "torn trace observed");
            }
        }
        for writer in writers {
            writer.join().unwrap();
        }
        assert_eq!(recorder.snapshot().len(), 16);
    }

    #[test]
    fn jsonl_sink_writes_every_trace_without_threshold() {
        let dir = std::env::temp_dir().join(format!(
            "pmca-trace-sink-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let tracer = TracerConfig::new().log_path(path.clone()).build().unwrap();
            let trace = tracer.start("estimate", &[]).unwrap();
            trace.instant("cache.hit", &[]);
            tracer.finish(&trace);
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<String> = contents.lines().map(str::to_string).collect();
        let parsed = Trace::from_jsonl(&lines).expect("sink lines parse");
        assert_eq!(parsed.label, "estimate");
        assert_eq!(parsed.events.len(), 3);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn parse_dump_splits_consecutive_traces() {
        let tracer = tracer();
        for label in ["a", "b"] {
            let trace = tracer.start(label, &[]).unwrap();
            tracer.finish(&trace);
        }
        let mut lines = Vec::new();
        for trace in tracer.recent() {
            lines.extend(trace.to_jsonl());
        }
        let traces = Trace::parse_dump(&lines).expect("dump parses");
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].label, "a");
        assert_eq!(traces[1].label, "b");
    }

    #[test]
    fn from_jsonl_rejects_mixed_and_malformed_lines() {
        let tracer = tracer();
        let t1 = tracer.start("a", &[]).unwrap();
        tracer.finish(&t1);
        let t2 = tracer.start("b", &[]).unwrap();
        tracer.finish(&t2);
        let recent = tracer.recent();
        let mut mixed = recent[0].to_jsonl();
        mixed.extend(recent[1].to_jsonl());
        assert!(Trace::from_jsonl(&mixed).is_err());
        assert!(Trace::from_jsonl(&["not json".to_string()]).is_err());
        assert!(Trace::from_jsonl(&[]).is_err());
    }
}
