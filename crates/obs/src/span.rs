//! Scoped span timers.
//!
//! A [`Span`] reads the clock on entry and records the elapsed time into
//! its histogram when dropped — instrument a scope by binding one at the
//! top. Spans nest: every span reports its duration to the span that
//! encloses it on the same thread, so a parent opened with
//! [`Span::enter_with_self`] can additionally record its *exclusive*
//! time (total minus enclosed spans) into a second histogram. That is
//! what attributes a request's latency across layers — e.g. how much of
//! `ESTIMATE-APP` was the serving layer itself versus the simulated
//! collection run underneath it.
//!
//! When the target histogram belongs to a disabled registry the span is
//! inert: no clock read, no thread-local traffic — one relaxed atomic
//! load total, which is what keeps the opt-out overhead unmeasurable.

use crate::metrics::Histogram;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Nanoseconds of completed child spans inside the currently open
    /// span frame of this thread.
    static CHILD_NS: Cell<u64> = const { Cell::new(0) };
}

/// A scoped timer recording into a histogram on drop. See the module
/// docs for the nesting contract.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    histogram: Histogram,
    self_histogram: Option<Histogram>,
    started: Instant,
    /// Parent frame's child-time accumulator, restored on drop.
    saved_child_ns: u64,
}

impl Span {
    /// Open a span recording total elapsed time into `histogram`.
    pub fn enter(histogram: &Histogram) -> Span {
        Span::open(histogram, None)
    }

    /// Open a span recording total elapsed time into `histogram` and
    /// exclusive time — total minus spans opened (and closed) inside
    /// this one on the same thread — into `self_histogram`.
    pub fn enter_with_self(histogram: &Histogram, self_histogram: &Histogram) -> Span {
        Span::open(histogram, Some(self_histogram.clone()))
    }

    fn open(histogram: &Histogram, self_histogram: Option<Histogram>) -> Span {
        if !histogram.enabled() {
            return Span { inner: None };
        }
        let saved_child_ns = CHILD_NS.replace(0);
        Span {
            inner: Some(SpanInner {
                histogram: histogram.clone(),
                self_histogram,
                started: Instant::now(),
                saved_child_ns,
            }),
        }
    }

    /// Whether this span is live (not the inert disabled-registry stub).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let total_ns = u64::try_from(inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child_ns = CHILD_NS.get();
        inner.histogram.record_ns(total_ns);
        if let Some(self_histogram) = &inner.self_histogram {
            self_histogram.record_ns(total_ns.saturating_sub(child_ns));
        }
        // Report this span's full duration to the enclosing frame.
        CHILD_NS.set(inner.saved_child_ns.wrapping_add(total_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn spans_record_on_drop() {
        let h = Histogram::standalone();
        {
            let _span = Span::enter(&h);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= Duration::from_millis(2));
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let outer_total = Histogram::standalone();
        let outer_self = Histogram::standalone();
        let inner_h = Histogram::standalone();
        {
            let _outer = Span::enter_with_self(&outer_total, &outer_self);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = Span::enter(&inner_h);
                std::thread::sleep(Duration::from_millis(10));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(outer_total.count(), 1);
        assert_eq!(outer_self.count(), 1);
        assert_eq!(inner_h.count(), 1);
        // Total covers everything; self time excludes the 10 ms child.
        assert!(outer_total.max() >= Duration::from_millis(14));
        assert!(outer_self.max() >= Duration::from_millis(4));
        assert!(
            outer_self.max() < inner_h.max(),
            "self {:?} should exclude the child's {:?}",
            outer_self.max(),
            inner_h.max()
        );
    }

    #[test]
    fn sequential_siblings_all_report_to_the_parent() {
        let parent_total = Histogram::standalone();
        let parent_self = Histogram::standalone();
        let child = Histogram::standalone();
        {
            let _p = Span::enter_with_self(&parent_total, &parent_self);
            for _ in 0..3 {
                let _c = Span::enter(&child);
                std::thread::sleep(Duration::from_millis(3));
            }
        }
        assert_eq!(child.count(), 3);
        // All three children subtract from the parent's self time.
        assert!(parent_self.max() + Duration::from_millis(8) < parent_total.max());
    }

    #[test]
    fn disabled_spans_are_inert() {
        let registry = MetricsRegistry::disabled();
        let h = registry.histogram("pmca_inert_seconds", &[]);
        let span = Span::enter(&h);
        assert!(!span.is_recording());
        drop(span);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn sibling_threads_do_not_share_frames() {
        let parent_total = Histogram::standalone();
        let parent_self = Histogram::standalone();
        let _p = Span::enter_with_self(&parent_total, &parent_self);
        let other = Histogram::standalone();
        let other2 = other.clone();
        std::thread::spawn(move || {
            let _s = Span::enter(&other2);
        })
        .join()
        .unwrap();
        assert_eq!(other.count(), 1);
        // The other thread's span must not have registered as our child;
        // nothing observable yet, but dropping the parent must not panic
        // and must record exactly once.
        drop(_p);
        assert_eq!(parent_total.count(), 1);
    }
}
