//! The metrics registry: named instruments, get-or-register semantics,
//! and Prometheus-style text exposition.
//!
//! Registration takes a write lock, but it happens once per call site
//! (instrumented code caches the returned handle, typically in a
//! `OnceLock`); recording through a handle never touches the registry
//! again. The process-global registry behind [`MetricsRegistry::global`]
//! is what the serving stack and the substrate crates record into; local
//! registries exist for tests and for services that opt out of metrics
//! ([`MetricsRegistry::disabled`]).

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Identity of one instrument: metric name plus label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, conventionally `pmca_<layer>_<what>_<unit>`.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Render `name{k="v",...}` with optional extra label pairs appended.
    fn exposition(&self, extra: &[(&str, &str)]) -> String {
        let mut out = self.name.clone();
        if self.labels.is_empty() && extra.is_empty() {
            return out;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, "{k}=\"{escaped}\"");
        }
        out.push('}');
        out
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A namespace of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: RwLock<BTreeMap<MetricId, Instrument>>,
    enabled: Arc<AtomicBool>,
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

impl MetricsRegistry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            instruments: RwLock::new(BTreeMap::new()),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// A registry whose histograms refuse span timing: recording
    /// degrades to (nearly) free, for services that opt out of metrics.
    pub fn disabled() -> Self {
        let registry = MetricsRegistry::new();
        registry.enabled.store(false, Ordering::Relaxed);
        registry
    }

    /// Whether this registry's spans time themselves.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The process-global registry. Substrate crates (simulator,
    /// collector, trainers) record here; `METRICS` exposes it.
    pub fn global() -> &'static Arc<MetricsRegistry> {
        GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
    }

    /// Get or register the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Instrument::Counter(Counter::standalone())) {
            Instrument::Counter(c) => c,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Instrument::Gauge(Gauge::standalone())) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let enabled = Arc::clone(&self.enabled);
        match self.get_or_insert(name, labels, move || {
            Instrument::Histogram(Histogram::with_enabled(enabled))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'),
            "metric name {name:?} is not exposition-safe"
        );
        let id = MetricId::new(name, labels);
        if let Some(found) = self.instruments.read().expect("metrics poisoned").get(&id) {
            return found.clone();
        }
        let mut instruments = self.instruments.write().expect("metrics poisoned");
        instruments.entry(id).or_insert_with(make).clone()
    }

    /// Numeric samples of every instrument, in exposition-id order —
    /// what [`crate::health::HistoryRing`] snapshots. Counters and
    /// gauges yield one `(id, value)` each; histograms yield their
    /// `quantile="0.5|0.95|0.99"` readouts (seconds) plus the `_count`
    /// line, so a history of the samples carries both percentile drift
    /// and event-rate deltas.
    pub fn sample(&self) -> Vec<(String, f64)> {
        let instruments = self.instruments.read().expect("metrics poisoned");
        let mut samples = Vec::with_capacity(instruments.len());
        for (id, instrument) in instruments.iter() {
            match instrument {
                #[allow(clippy::cast_precision_loss)] // readout, not arithmetic
                Instrument::Counter(c) => samples.push((id.exposition(&[]), c.get() as f64)),
                Instrument::Gauge(g) => samples.push((id.exposition(&[]), g.get())),
                Instrument::Histogram(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        samples.push((
                            id.exposition(&[("quantile", label)]),
                            h.quantile(q).as_secs_f64(),
                        ));
                    }
                    let count_id = MetricId {
                        name: format!("{}_count", id.name),
                        labels: id.labels.clone(),
                    };
                    #[allow(clippy::cast_precision_loss)] // readout, not arithmetic
                    samples.push((count_id.exposition(&[]), h.count() as f64));
                }
            }
        }
        samples
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.read().expect("metrics poisoned").len()
    }

    /// Whether no instrument is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every instrument as Prometheus-style exposition lines,
    /// sorted by metric id.
    ///
    /// Counters and gauges render as one `name{labels} value` line.
    /// Histograms render as summary-style quantile lines (`p50`, `p95`,
    /// `p99` as `quantile="0.5"` etc.) plus `_count`, `_sum`, and `_max`
    /// lines, with durations in seconds.
    pub fn render(&self) -> Vec<String> {
        let instruments = self.instruments.read().expect("metrics poisoned");
        let mut lines = Vec::with_capacity(instruments.len());
        for (id, instrument) in instruments.iter() {
            match instrument {
                Instrument::Counter(c) => {
                    lines.push(format!("{} {}", id.exposition(&[]), c.get()));
                }
                Instrument::Gauge(g) => {
                    lines.push(format!("{} {}", id.exposition(&[]), g.get()));
                }
                Instrument::Histogram(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        lines.push(format!(
                            "{} {}",
                            id.exposition(&[("quantile", label)]),
                            h.quantile(q).as_secs_f64()
                        ));
                    }
                    let suffixed = |suffix: &str| MetricId {
                        name: format!("{}{suffix}", id.name),
                        labels: id.labels.clone(),
                    };
                    lines.push(format!(
                        "{} {}",
                        suffixed("_max").exposition(&[]),
                        h.max().as_secs_f64()
                    ));
                    lines.push(format!(
                        "{} {}",
                        suffixed("_count").exposition(&[]),
                        h.count()
                    ));
                    lines.push(format!(
                        "{} {}",
                        suffixed("_sum").exposition(&[]),
                        h.sum().as_secs_f64()
                    ));
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let r = MetricsRegistry::new();
        let a = r.counter("pmca_test_total", &[("kind", "x")]);
        let b = r.counter("pmca_test_total", &[("kind", "x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same id shares state");
        let other = r.counter("pmca_test_total", &[("kind", "y")]);
        assert_eq!(other.get(), 0, "distinct labels are distinct metrics");
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_conflicts_panic() {
        let r = MetricsRegistry::new();
        let _ = r.counter("pmca_conflict", &[]);
        let _ = r.histogram("pmca_conflict", &[]);
    }

    #[test]
    fn exposition_renders_counters_gauges_histograms() {
        let r = MetricsRegistry::new();
        r.counter("pmca_a_total", &[("kind", "x")]).add(3);
        r.gauge("pmca_b", &[]).set(1.5);
        let h = r.histogram("pmca_c_seconds", &[("command", "estimate")]);
        h.record_ns(1_000_000); // 1 ms
        let lines = r.render();
        assert!(
            lines.contains(&"pmca_a_total{kind=\"x\"} 3".to_string()),
            "{lines:?}"
        );
        assert!(lines.contains(&"pmca_b 1.5".to_string()), "{lines:?}");
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("pmca_c_seconds{command=\"estimate\",quantile=\"0.99\"} ")),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"pmca_c_seconds_count{command=\"estimate\"} 1".to_string()),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"pmca_c_seconds_max{command=\"estimate\"} 0.001".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let id = MetricId::new("m", &[("k", "a\"b\\c")]);
        assert_eq!(id.exposition(&[]), "m{k=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn disabled_registries_mark_their_histograms() {
        let r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        let h = r.histogram("pmca_off_seconds", &[]);
        assert!(!h.enabled());
        let live = MetricsRegistry::new().histogram("pmca_on_seconds", &[]);
        assert!(live.enabled());
    }

    #[test]
    fn global_registry_is_shared() {
        let a = MetricsRegistry::global().counter("pmca_global_probe_total", &[]);
        let b = MetricsRegistry::global().counter("pmca_global_probe_total", &[]);
        a.inc();
        assert!(b.get() >= 1);
    }
}
