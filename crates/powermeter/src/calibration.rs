//! Reference-meter calibration.
//!
//! The paper: *"The power meters are periodically calibrated using an ANSI
//! C12.20 revenue-grade power meter, Yokogawa WT210."* The procedure here
//! mirrors that: read a known reference load through both instruments and
//! correct the WattsUp gain by the observed ratio.

use crate::wattsup::WattsUpPro;

/// A revenue-grade reference meter: for simulation purposes its readings
/// are exact (the WT210's 0.1% error is far below the WattsUp's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceMeter;

impl ReferenceMeter {
    /// Create a reference meter.
    pub fn new() -> Self {
        ReferenceMeter
    }

    /// Read a load's true power, watts.
    pub fn read_watts(&self, true_power_w: f64) -> f64 {
        true_power_w
    }
}

/// Calibrate a WattsUp against the reference using `samples` paired
/// readings of a steady `reference_load_w` load. Returns the gain
/// correction factor that was applied.
///
/// # Panics
///
/// Panics if `samples == 0` or the load is not positive.
pub fn calibrate(
    meter: &mut WattsUpPro,
    reference: &ReferenceMeter,
    reference_load_w: f64,
    samples: usize,
) -> f64 {
    assert!(samples > 0, "calibration needs at least one sample");
    assert!(
        reference_load_w.is_finite() && reference_load_w > 0.0,
        "reference load must be positive"
    );
    let truth = reference.read_watts(reference_load_w);
    let mean_reading: f64 = (0..samples)
        .map(|_| meter.read_watts(reference_load_w))
        .sum::<f64>()
        / samples as f64;
    let correction = truth / mean_reading;
    meter.set_gain(meter.gain() * correction);
    correction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_drives_gain_to_unity() {
        let mut m = WattsUpPro::new(58.0, 9);
        m.set_gain(1.05);
        calibrate(&mut m, &ReferenceMeter::new(), 200.0, 400);
        assert!((m.gain() - 1.0).abs() < 0.005, "gain {}", m.gain());
    }

    #[test]
    fn calibration_returns_correction_factor() {
        let mut m = WattsUpPro::new(58.0, 9);
        m.set_gain(1.10);
        let corr = calibrate(&mut m, &ReferenceMeter::new(), 150.0, 400);
        assert!((corr - 1.0 / 1.10).abs() < 0.01, "correction {corr}");
    }

    #[test]
    fn calibrated_meter_reads_accurately() {
        let mut m = WattsUpPro::new(32.0, 5);
        calibrate(&mut m, &ReferenceMeter::new(), 100.0, 500);
        let n = 500;
        let mean: f64 = (0..n).map(|_| m.read_watts(75.0)).sum::<f64>() / n as f64;
        assert!((mean - 75.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn reference_meter_is_exact() {
        assert_eq!(ReferenceMeter::new().read_watts(123.456), 123.456);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let mut m = WattsUpPro::new(58.0, 1);
        calibrate(&mut m, &ReferenceMeter::new(), 100.0, 0);
    }
}
