//! The HCLWattsUp-style measurement API.
//!
//! The paper obtains dynamic energy "programmatically using a detailed
//! statistical methodology employing HCLWattsUp API": measure the
//! platform's static power, run the application while sampling the meter,
//! integrate total energy, and report `E_D = E_T − P_S·T_E` as a sample
//! mean over repeated runs.

use crate::calibration::{calibrate, ReferenceMeter};
use crate::methodology::Methodology;
use crate::wattsup::WattsUpPro;
use pmca_cpusim::app::Application;
use pmca_cpusim::Machine;
use pmca_parallel::ThreadPool;
use pmca_stats::confidence::ConfidenceInterval;

/// A dynamic-energy measurement: the paper's response variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMeasurement {
    /// Sample mean of dynamic energy over the runs, joules.
    pub mean_joules: f64,
    /// Half-width of the 95% CI of the mean, joules (0 when only the run
    /// cap stopped a degenerate sample).
    pub ci_half_width: f64,
    /// Number of application runs performed.
    pub runs: usize,
    /// Sample mean of the execution time, seconds.
    pub mean_seconds: f64,
}

/// The measurement front-end: a calibrated WattsUp plus the statistical
/// methodology, bound to one platform.
#[derive(Debug, Clone)]
pub struct HclWattsUp {
    meter: WattsUpPro,
    methodology: Methodology,
    static_power_w: f64,
}

impl HclWattsUp {
    /// Attach to `machine`'s platform: calibrates a fresh meter against
    /// the reference and measures static power from 60 idle samples.
    pub fn new(machine: &Machine, seed: u64) -> Self {
        Self::with_methodology(machine, seed, Methodology::standard())
    }

    /// Like [`HclWattsUp::new`] with an explicit methodology.
    pub fn with_methodology(machine: &Machine, seed: u64, methodology: Methodology) -> Self {
        let spec = machine.spec();
        let mut meter = WattsUpPro::new(spec.idle_power_watts, seed);
        calibrate(
            &mut meter,
            &ReferenceMeter::new(),
            spec.idle_power_watts + 80.0,
            300,
        );
        let idle_samples = meter.sample_idle(60);
        let static_power_w = idle_samples.iter().sum::<f64>() / idle_samples.len() as f64;
        HclWattsUp {
            meter,
            methodology,
            static_power_w,
        }
    }

    /// The measured static (idle) power of the platform, watts.
    pub fn static_power_w(&self) -> f64 {
        self.static_power_w
    }

    /// The methodology in force.
    pub fn methodology(&self) -> Methodology {
        self.methodology
    }

    /// Measure one run's dynamic energy, joules: integrate the sampled
    /// total power and subtract `P_S · T_E`.
    pub fn measure_once(&mut self, machine: &mut Machine, app: &dyn Application) -> (f64, f64) {
        let record = machine.run(app);
        let (samples, dt) = self.meter.sample_run(&record);
        let total_energy: f64 = samples.iter().sum::<f64>() * dt;
        let dynamic = total_energy - self.static_power_w * record.duration_s;
        (dynamic.max(0.0), record.duration_s)
    }

    /// Measure an application's dynamic energy with the repeated-run
    /// methodology, simulating runs on the process-wide thread pool.
    pub fn measure_dynamic_energy(
        &mut self,
        machine: &mut Machine,
        app: &dyn Application,
    ) -> EnergyMeasurement {
        self.measure_dynamic_energy_with_pool(machine, app, &ThreadPool::global())
    }

    /// [`HclWattsUp::measure_dynamic_energy`] with an explicit pool.
    ///
    /// The adaptive estimator decides when to stop, so runs are simulated
    /// in fixed-size waves: each wave's run indices are reserved serially,
    /// the simulations fan out on the pool, and the meter samples the
    /// records serially in index order until the estimator is satisfied
    /// (surplus simulated records of the final wave are discarded). The
    /// wave size is a constant, never the thread count, so the
    /// measurement is bit-identical at any thread count.
    pub fn measure_dynamic_energy_with_pool(
        &mut self,
        machine: &mut Machine,
        app: &dyn Application,
        pool: &ThreadPool,
    ) -> EnergyMeasurement {
        const WAVE: usize = 8;
        let mut est = self.methodology.estimator();
        let mut times = Vec::new();
        'waves: while !est.is_satisfied() {
            let base = machine.reserve_runs(WAVE as u64);
            let indices: Vec<u64> = (base..base + WAVE as u64).collect();
            let frozen: &Machine = machine;
            let records = pool.par_map(&indices, |&run_index| frozen.run_at(app, run_index));
            for record in records {
                let (samples, dt) = self.meter.sample_run(&record);
                let total_energy: f64 = samples.iter().sum::<f64>() * dt;
                let dynamic = (total_energy - self.static_power_w * record.duration_s).max(0.0);
                est.add(dynamic);
                times.push(record.duration_s);
                if est.is_satisfied() {
                    break 'waves;
                }
            }
        }
        let ci_half_width =
            ConfidenceInterval::of_sample(est.observations(), self.methodology.confidence)
                .map(|ci| ci.half_width)
                .unwrap_or(0.0);
        EnergyMeasurement {
            mean_joules: est.mean(),
            ci_half_width,
            runs: est.runs(),
            mean_seconds: times.iter().sum::<f64>() / times.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::CompoundApp;
    use pmca_cpusim::PlatformSpec;
    use pmca_stats::descriptive::relative_difference;
    use pmca_workloads::{Dgemm, Fft2d};

    fn setup() -> (Machine, HclWattsUp) {
        let machine = Machine::new(PlatformSpec::intel_skylake(), 11);
        let api = HclWattsUp::new(&machine, 11);
        (machine, api)
    }

    #[test]
    fn static_power_estimate_is_close_to_truth() {
        let (machine, api) = setup();
        let truth = machine.spec().idle_power_watts;
        assert!(
            (api.static_power_w() - truth).abs() < 1.5,
            "{}",
            api.static_power_w()
        );
    }

    #[test]
    fn measured_energy_tracks_ground_truth() {
        let (mut machine, mut api) = setup();
        let app = Dgemm::new(12_000);
        let measured = api.measure_dynamic_energy(&mut machine, &app);
        let truth = machine.run(&app).dynamic_energy_joules;
        let rel = relative_difference(measured.mean_joules, truth);
        assert!(
            rel < 0.08,
            "meter {m} vs truth {truth}: {rel}",
            m = measured.mean_joules
        );
    }

    #[test]
    fn measurement_respects_run_bounds() {
        let (mut machine, mut api) = setup();
        let m = api.measure_dynamic_energy(&mut machine, &Dgemm::new(9_000));
        let meth = api.methodology();
        assert!(m.runs >= meth.min_runs && m.runs <= meth.max_runs);
        assert!(m.ci_half_width >= 0.0);
        assert!(m.mean_seconds > 0.0);
    }

    #[test]
    fn measured_energy_is_additive_for_fixed_work_compounds() {
        // The paper's founding observation, now through the *meter*: the
        // dynamic energy of DGEMM;FFT equals the sum of the parts within
        // measurement noise.
        let (mut machine, mut api) = setup();
        let a = Dgemm::new(10_000);
        let b = Fft2d::new(24_000);
        let ea = api.measure_dynamic_energy(&mut machine, &a).mean_joules;
        let eb = api.measure_dynamic_energy(&mut machine, &b).mean_joules;
        let eab = api
            .measure_dynamic_energy(&mut machine, &CompoundApp::pair(a, b))
            .mean_joules;
        let err = relative_difference(ea + eb, eab);
        assert!(
            err < 0.05,
            "energy additivity violated: {ea}+{eb} vs {eab} ({err})"
        );
    }

    #[test]
    fn larger_problems_consume_more_energy() {
        let (mut machine, mut api) = setup();
        let small = api
            .measure_dynamic_energy(&mut machine, &Dgemm::new(7_000))
            .mean_joules;
        let large = api
            .measure_dynamic_energy(&mut machine, &Dgemm::new(14_000))
            .mean_joules;
        assert!(large > 4.0 * small, "small {small}, large {large}");
    }
}
