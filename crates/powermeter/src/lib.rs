//! Simulated system-level power measurement for the SLOPE-PMC reproduction.
//!
//! The paper's ground truth is *"system-level physical measurements using
//! power meters"*: a WattsUp Pro sampled at 1 Hz, read programmatically
//! through the HCLWattsUp API, and periodically calibrated against an
//! ANSI C12.20 revenue-grade Yokogawa WT210. This crate reproduces that
//! stack against the simulator:
//!
//! * [`wattsup`] — the sampled meter: 1 Hz sampling, 0.1 W quantisation,
//!   reading noise, and a gain error that drifts until recalibration;
//! * [`calibration`] — the reference-meter calibration procedure;
//! * [`methodology`] — the repeated-run statistical methodology (sample
//!   means with Student-t confidence intervals, as in section 3 of the
//!   paper's supplemental);
//! * [`hclwattsup`] — the HCLWattsUp-style API: measure the static power,
//!   run an application repeatedly, and report its *dynamic* energy
//!   `E_D = E_T − P_S·T_E` with a confidence interval.
//!
//! # Examples
//!
//! ```
//! use pmca_cpusim::{Machine, PlatformSpec};
//! use pmca_cpusim::app::SyntheticApp;
//! use pmca_powermeter::hclwattsup::HclWattsUp;
//!
//! let mut machine = Machine::new(PlatformSpec::intel_haswell(), 3);
//! let mut api = HclWattsUp::new(&machine, 3);
//! let app = SyntheticApp::balanced("probe", 5e10);
//! let measurement = api.measure_dynamic_energy(&mut machine, &app);
//! assert!(measurement.mean_joules > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod hclwattsup;
pub mod methodology;
pub mod rapl;
pub mod wattsup;

pub use hclwattsup::{EnergyMeasurement, HclWattsUp};
pub use methodology::Methodology;
pub use rapl::RaplSensor;
pub use wattsup::WattsUpPro;
