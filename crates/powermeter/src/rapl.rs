//! An on-chip energy sensor in the style of Intel RAPL.
//!
//! The paper's taxonomy of measurement approaches lists (a) external
//! meters, (b) on-chip sensors, and (c) predictive models, and dismisses
//! (b) with *"no definitive research works proving its accuracy"*. The
//! critique is structural: RAPL's package-energy counter is itself the
//! output of an internal event-based model with vendor-calibrated weights,
//! so it carries *systematic, workload-dependent* bias — unlike the
//! external meter, whose error is unbiased noise. This module models that:
//! the sensor computes energy from the run's activity with mis-calibrated
//! weights (memory traffic under-attributed, core activity slightly
//! over-attributed) and reports in the hardware's 15.3 µJ quanta.

use pmca_cpusim::activity::ActivityField;
use pmca_cpusim::machine::RunRecord;

/// RAPL's energy-status-unit quantum, joules (2⁻¹⁶ J).
pub const ENERGY_UNIT_J: f64 = 1.0 / 65_536.0;

/// A simulated on-chip energy sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct RaplSensor {
    /// Multiplicative error on core-side attribution (> 1: overestimates).
    pub core_gain: f64,
    /// Fraction of memory-side energy the internal model captures
    /// (< 1: underestimates memory-bound workloads).
    pub memory_capture: f64,
}

impl Default for RaplSensor {
    fn default() -> Self {
        RaplSensor {
            core_gain: 1.06,
            memory_capture: 0.55,
        }
    }
}

impl RaplSensor {
    /// The sensor's package-energy reading for one run, joules.
    ///
    /// The internal model splits the run's true dynamic energy into a
    /// core-side and a memory-side component (by activity attribution)
    /// and reports `core·core_gain + memory·memory_capture`, quantised to
    /// the hardware energy unit.
    pub fn read_package_energy(&self, record: &RunRecord) -> f64 {
        let activity = &record.total_activity;
        // Attribution: memory-side energy share approximated by the DRAM
        // traffic's cost relative to a per-uop core cost — the same split
        // the true power model uses, but the *sensor* only estimates it.
        let dram = activity.get(ActivityField::DramBytes);
        let uops = activity.get(ActivityField::UopsExecuted).max(1.0);
        let memory_share = (dram * 0.35 / (dram * 0.35 + uops)).clamp(0.0, 0.9);
        let truth = record.dynamic_energy_joules;
        let core = truth * (1.0 - memory_share);
        let memory = truth * memory_share;
        let estimate = core * self.core_gain + memory * self.memory_capture;
        (estimate / ENERGY_UNIT_J).round() * ENERGY_UNIT_J
    }

    /// Signed relative error of the sensor against ground truth for one
    /// run: positive = overestimate.
    pub fn relative_error(&self, record: &RunRecord) -> f64 {
        (self.read_package_energy(record) - record.dynamic_energy_joules)
            / record.dynamic_energy_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::{Machine, PlatformSpec};

    fn machine() -> Machine {
        Machine::new(PlatformSpec::intel_skylake(), 77)
    }

    #[test]
    fn readings_are_quantised_to_the_energy_unit() {
        let mut m = machine();
        let record = m.run(&SyntheticApp::balanced("q", 5e9));
        let reading = RaplSensor::default().read_package_energy(&record);
        let quanta = reading / ENERGY_UNIT_J;
        assert!((quanta - quanta.round()).abs() < 1e-6);
    }

    #[test]
    fn compute_bound_runs_are_slightly_overestimated() {
        let mut m = machine();
        let app = SyntheticApp::balanced("compute", 2e10).with_memory_intensity(0.02);
        let record = m.run(&app);
        let err = RaplSensor::default().relative_error(&record);
        assert!(err > 0.0 && err < 0.10, "error {err}");
    }

    #[test]
    fn memory_bound_runs_are_underestimated() {
        // Pointer chasing moves a cache line every few instructions — the
        // DRAM-dominated case the internal model under-attributes.
        let mut m = machine();
        let app =
            pmca_workloads::misc::MiscApp::new(pmca_workloads::misc::MiscKind::PointerChase, 1.0);
        let record = m.run(&app);
        let err = RaplSensor::default().relative_error(&record);
        assert!(
            err < -0.05,
            "error {err} should be clearly negative for memory-bound work"
        );
    }

    #[test]
    fn bias_is_systematic_not_noise() {
        // Repeated runs of the same app give essentially the same error —
        // averaging does not help, unlike the external meter.
        let mut m = machine();
        let app = SyntheticApp::balanced("sys", 1e10).with_memory_intensity(0.6);
        let sensor = RaplSensor::default();
        let errors: Vec<f64> = (0..5)
            .map(|_| sensor.relative_error(&m.run(&app)))
            .collect();
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean.abs() > 0.02, "bias should be visible, mean {mean}");
        for e in &errors {
            assert!((e - mean).abs() < 0.02, "bias should be stable: {errors:?}");
        }
    }

    #[test]
    fn perfect_sensor_matches_truth() {
        let mut m = machine();
        let record = m.run(&SyntheticApp::balanced("perfect", 5e9));
        let ideal = RaplSensor {
            core_gain: 1.0,
            memory_capture: 1.0,
        };
        let err = ideal.relative_error(&record);
        assert!(err.abs() < 1e-4, "{err}");
    }
}
