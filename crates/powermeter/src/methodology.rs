//! The paper's repeated-run statistical methodology.
//!
//! Every response variable (dynamic energy, execution time, PMC counts) is
//! reported as a sample mean over several runs, with runs repeated until
//! the 95% confidence interval of the mean is within a target precision —
//! or a run cap is reached (section 3 of the paper's supplemental).

use pmca_stats::confidence::MeanEstimator;

/// Parameters of the repeated-run methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Methodology {
    /// Target relative CI half-width (e.g. `0.025` = 2.5% of the mean).
    pub precision: f64,
    /// Confidence level of the interval.
    pub confidence: f64,
    /// Minimum number of runs regardless of precision.
    pub min_runs: usize,
    /// Maximum number of runs regardless of precision.
    pub max_runs: usize,
}

impl Methodology {
    /// The defaults used throughout the reproduction: 95% CI within 2.5%
    /// of the mean, between 3 and 15 runs.
    pub fn standard() -> Self {
        Methodology {
            precision: 0.025,
            confidence: 0.95,
            min_runs: 3,
            max_runs: 15,
        }
    }

    /// A faster variant for coarse sweeps and benchmarks: 5% precision,
    /// between 2 and 5 runs.
    pub fn quick() -> Self {
        Methodology {
            precision: 0.05,
            confidence: 0.95,
            min_runs: 2,
            max_runs: 5,
        }
    }

    /// Build a [`MeanEstimator`] configured with these parameters.
    pub fn estimator(&self) -> MeanEstimator {
        MeanEstimator::new(
            self.precision,
            self.confidence,
            self.min_runs,
            self.max_runs,
        )
    }

    /// Drive `observe` until the stopping rule is met and return the final
    /// estimator.
    ///
    /// # Examples
    ///
    /// ```
    /// use pmca_powermeter::Methodology;
    ///
    /// let mut x = 100.0;
    /// let est = Methodology::standard().run_until_stable(|| {
    ///     x += 0.01; // an almost-deterministic measurement
    ///     x
    /// });
    /// assert!(est.runs() >= 3);
    /// assert!((est.mean() - 100.0).abs() < 1.0);
    /// ```
    pub fn run_until_stable<F: FnMut() -> f64>(&self, mut observe: F) -> MeanEstimator {
        let mut est = self.estimator();
        while !est.is_satisfied() {
            est.add(observe());
        }
        est
    }
}

impl Default for Methodology {
    fn default() -> Self {
        Methodology::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_bounds_are_sane() {
        let m = Methodology::standard();
        assert!(m.min_runs >= 2);
        assert!(m.max_runs > m.min_runs);
        assert!(m.precision < 0.1);
    }

    #[test]
    fn deterministic_measurements_stop_at_min_runs() {
        let est = Methodology::standard().run_until_stable(|| 42.0);
        assert_eq!(est.runs(), Methodology::standard().min_runs);
    }

    #[test]
    fn noisy_measurements_take_more_runs_than_clean_ones() {
        let mut flip = 1.0_f64;
        let noisy = Methodology::standard().run_until_stable(|| {
            flip = -flip;
            100.0 + 8.0 * flip
        });
        let clean = Methodology::standard().run_until_stable(|| 100.0);
        assert!(noisy.runs() > clean.runs());
    }

    #[test]
    fn run_cap_is_respected() {
        let mut flip = 1.0_f64;
        let est = Methodology::standard().run_until_stable(|| {
            flip = -flip;
            100.0 * (1.0 + flip) // violently noisy: 0 or 200
        });
        assert_eq!(est.runs(), Methodology::standard().max_runs);
    }

    #[test]
    fn quick_is_cheaper_than_standard() {
        let q = Methodology::quick();
        let s = Methodology::standard();
        assert!(q.max_runs < s.max_runs);
        assert!(q.precision > s.precision);
    }
}
