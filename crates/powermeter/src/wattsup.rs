//! The simulated WattsUp Pro meter.
//!
//! The physical instrument samples apparent power once per second with a
//! 0.1 W display resolution and roughly ±1.5% reading accuracy, and its
//! gain drifts slowly between calibrations — which is why the paper
//! recalibrates against a revenue-grade Yokogawa WT210.

use pmca_cpusim::machine::RunRecord;
use pmca_stats::rng::{Rng, Xoshiro256pp};

/// Nominal sampling interval of the WattsUp Pro, seconds.
pub const SAMPLE_INTERVAL_S: f64 = 1.0;
/// Display/readout quantisation, watts.
pub const QUANTISATION_W: f64 = 0.1;

/// A simulated WattsUp Pro power meter attached to one platform.
#[derive(Debug, Clone)]
pub struct WattsUpPro {
    /// Multiplicative gain error (1.0 = perfectly calibrated).
    gain: f64,
    /// Relative standard deviation of per-sample reading noise.
    noise_rel: f64,
    /// Idle (static) power of the platform under the meter, watts.
    idle_power_w: f64,
    rng: Xoshiro256pp,
    samples_taken: u64,
}

impl WattsUpPro {
    /// Attach a meter to a platform with the given idle power. A fresh
    /// meter starts with a small deterministic gain error derived from the
    /// seed (instruments never arrive perfectly calibrated).
    pub fn new(idle_power_w: f64, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5747_5550); // "WUUP"
        let gain = 1.0 + (rng.next_f64() - 0.5) * 0.03;
        WattsUpPro {
            gain,
            noise_rel: 0.012,
            idle_power_w,
            rng,
            samples_taken: 0,
        }
    }

    /// Current gain error (read by the calibration procedure).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Set the gain (done by [`crate::calibration::calibrate`]).
    pub fn set_gain(&mut self, gain: f64) {
        assert!(gain.is_finite() && gain > 0.0, "gain must be positive");
        self.gain = gain;
    }

    /// Idle power of the attached platform, watts (true value; the meter
    /// *reads* it with noise via [`WattsUpPro::sample_idle`]).
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Number of samples taken since attachment.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Read one sample of the given true total power, watts.
    pub fn read_watts(&mut self, true_total_w: f64) -> f64 {
        self.samples_taken += 1;
        let noisy = true_total_w * self.gain * (1.0 + self.noise_rel * self.standard_normal());
        // Gain drifts a little with every sample until recalibrated.
        self.gain *= 1.0 + 2e-7 * self.standard_normal();
        (noisy / QUANTISATION_W).round() * QUANTISATION_W
    }

    /// Sample the meter over an idle platform for `n` seconds.
    pub fn sample_idle(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let p = self.idle_power_w;
                self.read_watts(p)
            })
            .collect()
    }

    /// Sample one application run at the meter's 1 Hz cadence (at least
    /// three samples, so sub-second runs are measurable at reduced
    /// fidelity). Like the real instrument, each reported sample is the
    /// *accumulated average* power over its interval, so integrating the
    /// samples recovers the run's energy up to reading noise.
    ///
    /// Returns `(samples, effective_interval_s)`.
    pub fn sample_run(&mut self, record: &RunRecord) -> (Vec<f64>, f64) {
        let duration = record.duration_s.max(1e-9);
        let n = ((duration / SAMPLE_INTERVAL_S).ceil() as usize).max(3);
        let dt = duration / n as f64;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let p_dyn = average_power_between(record, i as f64 * dt, (i as f64 + 1.0) * dt);
            samples.push(self.read_watts(self.idle_power_w + p_dyn));
        }
        (samples, dt)
    }

    fn standard_normal(&mut self) -> f64 {
        self.rng.standard_normal()
    }
}

/// Average true dynamic power of a run over `[t0, t1]` (piecewise constant
/// per phase; zero past the end of the run).
fn average_power_between(record: &RunRecord, t0: f64, t1: f64) -> f64 {
    if t1 <= t0 {
        return 0.0;
    }
    let mut energy = 0.0;
    let mut elapsed = 0.0_f64;
    for phase in &record.phase_powers {
        let start = elapsed.max(t0);
        let end = (elapsed + phase.duration_s).min(t1);
        if end > start {
            energy += phase.dynamic_watts * (end - start);
        }
        elapsed += phase.duration_s;
        if elapsed >= t1 {
            break;
        }
    }
    energy / (t1 - t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::{Machine, PlatformSpec};

    fn meter() -> WattsUpPro {
        WattsUpPro::new(58.0, 42)
    }

    #[test]
    fn fresh_meter_has_small_gain_error() {
        let m = meter();
        assert!((m.gain() - 1.0).abs() < 0.02);
    }

    #[test]
    fn readings_are_quantised() {
        let mut m = meter();
        for _ in 0..20 {
            let r = m.read_watts(100.0);
            let q = (r / QUANTISATION_W).round() * QUANTISATION_W;
            assert!((r - q).abs() < 1e-9);
        }
    }

    #[test]
    fn readings_center_on_truth_times_gain() {
        let mut m = meter();
        let gain = m.gain();
        let n = 3000;
        let mean: f64 = (0..n).map(|_| m.read_watts(100.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 100.0 * gain).abs() < 0.5,
            "mean {mean}, gain {gain}"
        );
    }

    #[test]
    fn idle_samples_track_idle_power() {
        let mut m = meter();
        let samples = m.sample_idle(50);
        let mean: f64 = samples.iter().sum::<f64>() / 50.0;
        assert!((mean - 58.0).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn sample_run_integrates_to_true_energy() {
        let mut machine = Machine::new(PlatformSpec::intel_haswell(), 1);
        // A long-running app so 1 Hz sampling is fine-grained.
        let app = SyntheticApp::balanced("long", 8e11);
        let record = machine.run(&app);
        assert!(record.duration_s > 3.0, "test needs a multi-second run");
        let mut m = meter();
        m.set_gain(1.0);
        let (samples, dt) = m.sample_run(&record);
        let total: f64 = samples.iter().sum::<f64>() * dt;
        let expected = record.dynamic_energy_joules + 58.0 * record.duration_s;
        let rel = (total - expected).abs() / expected;
        assert!(rel < 0.02, "meter integral off by {rel}");
    }

    #[test]
    fn short_runs_get_minimum_three_samples() {
        let mut machine = Machine::new(PlatformSpec::intel_haswell(), 1);
        let app = SyntheticApp::balanced("short", 1e8);
        let record = machine.run(&app);
        assert!(record.duration_s < 1.0);
        let (samples, dt) = meter().sample_run(&record);
        assert_eq!(samples.len(), 3);
        assert!((dt * 3.0 - record.duration_s).abs() < 1e-9);
    }

    #[test]
    fn gain_drift_is_slow() {
        let mut m = meter();
        let g0 = m.gain();
        for _ in 0..10_000 {
            m.read_watts(80.0);
        }
        assert!(
            (m.gain() - g0).abs() < 0.01,
            "drifted from {g0} to {}",
            m.gain()
        );
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn rejects_invalid_gain() {
        meter().set_gain(0.0);
    }
}
