//! In-repo stand-in for the external `criterion` crate.
//!
//! The workspace builds **offline**, so it cannot fetch criterion from a
//! registry. This crate implements the subset of the API the workspace's
//! benches use — [`Criterion::bench_function`], benchmark groups with
//! `sample_size`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with simple wall-clock measurement and a
//! plain-text report (median, mean, and spread per benchmark).
//!
//! There are no plots, no statistical regression detection, and no
//! saved baselines; the point is that `cargo bench` compiles and produces
//! honest numbers without network access. Passing `--test` (as the real
//! crate does) runs every routine exactly once without timing, so CI can
//! smoke-check the benches cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver handed to every target function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Like the real crate, `--test` switches to smoke mode: every
        // routine runs exactly once with no timing, so CI can verify the
        // benches still compile and execute without paying for sampling.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            default_sample_size: 20,
            smoke,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.default_sample_size, self.smoke, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group {}:", name.as_ref());
        let sample_size = self.default_sample_size;
        let smoke = self.smoke;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
            smoke,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    smoke: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, self.smoke, &mut f);
        self
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    smoke: bool,
}

impl Bencher {
    /// Time `routine`, called repeatedly; one invocation = one iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: aim for samples of roughly 10 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        let sample_start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(sample_start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, smoke: bool, f: &mut F) {
    if smoke {
        let mut bencher = Bencher {
            smoke: true,
            ..Bencher::default()
        };
        f(&mut bencher);
        println!("  {name:<44} ok (smoke)");
        return;
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        for s in &bencher.samples {
            per_iter_ns.push(s.as_nanos() as f64 / bencher.iters_per_sample.max(1) as f64);
        }
    }
    if per_iter_ns.is_empty() {
        println!("  {name:<44} (no samples: bencher.iter was never called)");
        return;
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "  {name:<44} median {} mean {} range [{} .. {}]",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Collect benchmark functions into a named runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_each_routine_exactly_once() {
        let mut calls = 0u32;
        run_one("smoke", 5, true, &mut |b: &mut Bencher| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with("s"));
    }
}
