//! Run every reproduction in order: Table 1, the collection economics,
//! and the Class A/B/C experiments (Tables 2–7). Pass `--quick` for a
//! smoke-scale run of the experiment classes.
//!
//! Each step is also available as its own binary (`repro_table1`,
//! `repro_collection`, `repro_class_a`, `repro_class_b`, `repro_class_c`).

use pmca_bench::{quick_requested, timed};
use pmca_core::class_a::{run_class_a, ClassAConfig};
use pmca_core::class_b::{run_class_b, ClassBConfig};
use pmca_core::class_c::run_class_c;
use pmca_core::tables::TextTable;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_pmctools::filter::EventFilter;
use pmca_pmctools::scheduler::schedule;
use pmca_workloads::{Dgemm, Fft2d, Hpcg};

fn main() {
    let quick = quick_requested();
    println!(
        "SLOPE-PMC-RS full reproduction ({} scale)\n",
        if quick { "smoke" } else { "paper" }
    );

    // Table 1.
    let hw = PlatformSpec::intel_haswell();
    let sk = PlatformSpec::intel_skylake();
    let mut t1 = TextTable::new("Table 1 (abridged)", &["spec", "Haswell", "Skylake"]);
    t1.row(vec![
        "cores".into(),
        hw.total_cores().to_string(),
        sk.total_cores().to_string(),
    ]);
    t1.row(vec![
        "TDP W".into(),
        hw.tdp_watts.to_string(),
        sk.tdp_watts.to_string(),
    ]);
    t1.row(vec![
        "idle W".into(),
        hw.idle_power_watts.to_string(),
        sk.idle_power_watts.to_string(),
    ]);
    println!("{}", t1.render());

    // Collection economics.
    timed("collection economics", || {
        for spec in [PlatformSpec::intel_haswell(), PlatformSpec::intel_skylake()] {
            let name = spec.micro_arch.to_string();
            let mut machine = Machine::new(spec, 2024);
            let offered = machine.catalog().len();
            let dgemm = Dgemm::new(7_000);
            let fft = Fft2d::new(23_000);
            let hpcg = Hpcg::new(1.0);
            let survivors = EventFilter::default()
                .survivors(&mut machine, &[&dgemm, &fft, &hpcg])
                .expect("filter probes schedule");
            let runs = schedule(machine.catalog(), &machine.catalog().all_ids())
                .expect("full catalog schedules")
                .len();
            println!(
                "  {name}: {offered} events offered, {} survive, {runs} runs to collect all",
                survivors.len()
            );
        }
    });

    // Class A.
    let a_cfg = if quick {
        ClassAConfig::smoke()
    } else {
        ClassAConfig::paper()
    };
    let a = timed("Class A (Tables 2-5)", || run_class_a(&a_cfg));
    println!("{}", a.table2());
    println!("{}", a.table3());
    println!("{}", a.table4());
    println!("{}", a.table5());

    // Class B.
    let b_cfg = if quick {
        ClassBConfig::smoke()
    } else {
        ClassBConfig::paper()
    };
    let b = timed("Class B (Tables 6, 7a)", || run_class_b(&b_cfg));
    println!("{}", b.table6());
    println!("{}", b.table7a());

    // Class C.
    let c = timed("Class C (Table 7b)", || {
        run_class_c(&b, b_cfg.nn_epochs, b_cfg.rf_trees, b_cfg.seed)
    });
    println!("PA4  = {}", c.pa4.join(", "));
    println!("PNA4 = {}\n", c.pna4.join(", "));
    println!("{}", c.table7b());

    // Full-catalog additivity survey (the sweep behind Class B's selection).
    let survey_cfg = if quick {
        pmca_core::survey::SurveyConfig {
            kernel_compounds: 4,
            diverse_compounds: 8,
            runs: 2,
            ..pmca_core::survey::SurveyConfig::default()
        }
    } else {
        pmca_core::survey::SurveyConfig::default()
    };
    for platform in [PlatformSpec::intel_haswell(), PlatformSpec::intel_skylake()] {
        let name = platform.micro_arch.to_string();
        let s = timed(&format!("catalog survey on {name}"), || {
            pmca_core::survey::run_survey(platform, &survey_cfg)
        });
        println!("  {name}: {}", s.summary());
    }
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured comparison,");
    println!("and repro_ablations / repro_future_work for the extensions.");
}
