//! Load generator for the `pmca-serve` estimation server.
//!
//! Spawns N concurrent clients, each firing M requests over the line
//! protocol (pipelined in batches, like `redis-benchmark -P`), and
//! reports throughput plus p50/p90/p99 per-request latency. By default
//! it starts an in-process server on an ephemeral port, trains an online
//! model on the simulated Skylake, and warms the run cache, so the
//! numbers reflect steady-state serving; pass `--addr HOST:PORT` to
//! target an already-running `slope-pmc serve` instead.
//!
//! ```text
//! cargo run --release -p pmca-bench --bin loadgen -- \
//!     [--addr HOST:PORT] [--clients N] [--requests M] [--workers W]
//!     [--duration-secs S] [--pipeline D] [--app-share PCT]
//!     [--tier f64|fixed|both]
//!     [--connections N] [--idle-fraction F]
//!     [--shards N] [--transport threaded|evented] [--event-loops N]
//!     [--no-metrics] [--no-trace] [--no-health] [--trace-sample N]
//!     [--streams N] [--windows M] [--label-every K]
//!     [--json PATH] [--compare BASELINE.json]
//! ```
//!
//! `--connections N --idle-fraction F` switches to connection-scale
//! mode: N total connections are held open for the whole run, but only
//! `N·(1-F)` of them actively fire requests — the rest sit idle, each
//! probed with one `STATS` round trip when opened and once more after
//! the timed run (both probes must answer, proving the server kept every
//! idle connection alive under load). Pair it with `--transport evented`
//! to measure the readiness-driven front end at 10k+ mostly-idle
//! connections; `--shards N` fans the in-process server out to N
//! consistent-hash shards behind one port. Open file limits apply:
//! `ulimit -n 65536` before a 10k-connection run.
//!
//! `--streams N` switches to streaming-ingestion mode: the clients open
//! N concurrent telemetry streams, push `--windows` one-second windows
//! into each (every `--label-every`'th labelled with measured joules, so
//! the online model refits and periodic heavy refits fire), and measure
//! ingest throughput in windows/sec plus per-window estimate latency as
//! individually timed `STREAM POLL` round trips (p50/p95/p99). The
//! summary also reports the server's completed refit-swap count —
//! proof the background forest/neural refits ran without stalling the
//! hot path.
//!
//! `--tier f64|fixed|both` picks the inference tier the estimate
//! requests ask for (`tier=fixed` runs the integer fixed-point fast
//! tier). `both` runs two timed passes over the same warmed server —
//! f64 first, then fixed — and reports each tier's percentiles side by
//! side, so one `--json` file captures the tier comparison.
//!
//! `--duration-secs S` replaces the fixed request count with a wall-clock
//! budget: every client fires pipelined batches until the deadline.
//! `--json PATH` writes the run summary (throughput, latency quantiles,
//! configuration) as a JSON object — commit one as a baseline.
//! `--compare BASELINE.json` reads such a file after the run and prints a
//! metric-by-metric delta table against it.
//!
//! After the run it fetches the server-side view via the `METRICS`
//! command — per-command latency percentiles measured inside the server,
//! next to the client-side numbers — and the full span breakdown of the
//! slowest request via `TRACE SLOWEST` (queue wait, cache lookup,
//! compute, substrate). `--trace-sample N` additionally prints one full
//! server-side trace every N requests while the run is in flight.
//! `--no-metrics` / `--no-trace` / `--no-health` build the in-process
//! server with inert instruments — run both ways to measure the
//! observability overhead. In streaming mode with health enabled, the
//! run ends with a model-health acceptance check: the labelled windows
//! must have produced calibration rows with sane prediction-interval
//! coverage, or the process exits nonzero so CI gates on it.

use pmca_obs::log;
use pmca_serve::protocol::parse_estimate_reply;
use pmca_serve::{
    Client, HealthRow, Request, Server, ServiceConfig, Tier, Trace, TraceScope, Transport,
};
use pmca_stream::synthetic_window;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const GOOD_SET: [&str; 4] = [
    "UOPS_EXECUTED_CORE",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_DISPATCHED_PORT_PORT_4",
];

/// The workload specs app-level queries rotate over (all warmed up
/// front, so steady-state queries are run-cache hits).
const APP_SPECS: [&str; 4] = [
    "dgemm:11500",
    "fft:26000",
    "dgemm:9500",
    "dgemm:9000;fft:24000",
];

/// Which inference tier(s) the estimate requests ask for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TierMode {
    F64,
    Fixed,
    /// Two passes over the same warmed server: f64 first, then fixed.
    Both,
}

impl TierMode {
    fn as_str(self) -> &'static str {
        match self {
            TierMode::F64 => "f64",
            TierMode::Fixed => "fixed",
            TierMode::Both => "both",
        }
    }

    fn passes(self) -> &'static [Tier] {
        match self {
            TierMode::F64 => &[Tier::F64],
            TierMode::Fixed => &[Tier::Fixed],
            TierMode::Both => &[Tier::F64, Tier::Fixed],
        }
    }
}

struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    workers: usize,
    pipeline: usize,
    /// Out of 100: how many requests are app-level (cache-backed) rather
    /// than raw counter-level estimates.
    app_share: u32,
    /// Inference tier(s) the estimate requests ask for.
    tier: TierMode,
    /// Build the in-process server with inert metrics (overhead A/B).
    no_metrics: bool,
    /// Build the in-process server with tracing disabled (overhead A/B).
    no_trace: bool,
    /// Build the in-process server with the model-health plane disabled
    /// (overhead A/B).
    no_health: bool,
    /// Print one full server-side trace every N requests.
    trace_sample: Option<usize>,
    /// Run for a wall-clock budget instead of a fixed request count.
    duration_secs: Option<u64>,
    /// Write the run summary as JSON to this path.
    json: Option<String>,
    /// Compare the run against a previously written `--json` baseline.
    compare: Option<String>,
    /// Streaming mode: open this many concurrent telemetry streams.
    streams: Option<usize>,
    /// Streaming mode: windows pushed per stream.
    windows: usize,
    /// Streaming mode: every K'th window carries measured joules.
    label_every: usize,
    /// Connection-scale mode: hold this many connections open, mostly
    /// idle.
    connections: Option<usize>,
    /// Connection-scale mode: the fraction of connections that stay
    /// idle (the rest fire requests).
    idle_fraction: f64,
    /// Transport for the in-process server.
    transport: Transport,
    /// Event-loop threads for the evented transport.
    event_loops: usize,
    /// In-process shards behind the consistent-hash router.
    shards: usize,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        addr: None,
        clients: 4,
        requests: 20_000,
        workers: 4,
        pipeline: 64,
        app_share: 50,
        tier: TierMode::F64,
        no_metrics: false,
        no_trace: false,
        no_health: false,
        trace_sample: None,
        duration_secs: None,
        json: None,
        compare: None,
        streams: None,
        windows: 64,
        label_every: 4,
        connections: None,
        idle_fraction: 0.99,
        transport: Transport::Threaded,
        event_loops: 4,
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => options.addr = Some(value("--addr")?),
            "--clients" => options.clients = parse_count(&value("--clients")?, "--clients")?,
            "--requests" => options.requests = parse_count(&value("--requests")?, "--requests")?,
            "--workers" => options.workers = parse_count(&value("--workers")?, "--workers")?,
            "--pipeline" => options.pipeline = parse_count(&value("--pipeline")?, "--pipeline")?,
            "--app-share" => {
                let raw = value("--app-share")?;
                options.app_share = raw
                    .parse::<u32>()
                    .ok()
                    .filter(|&p| p <= 100)
                    .ok_or(format!("--app-share: {raw:?} is not a percentage"))?;
            }
            "--tier" => {
                let raw = value("--tier")?;
                options.tier = match raw.to_ascii_lowercase().as_str() {
                    "f64" => TierMode::F64,
                    "fixed" => TierMode::Fixed,
                    "both" => TierMode::Both,
                    _ => return Err(format!("--tier: {raw:?} is not f64, fixed, or both")),
                };
            }
            "--no-metrics" => options.no_metrics = true,
            "--no-trace" => options.no_trace = true,
            "--no-health" => options.no_health = true,
            "--trace-sample" => {
                options.trace_sample =
                    Some(parse_count(&value("--trace-sample")?, "--trace-sample")?);
            }
            "--duration-secs" => {
                options.duration_secs =
                    Some(parse_count(&value("--duration-secs")?, "--duration-secs")? as u64);
            }
            "--json" => options.json = Some(value("--json")?),
            "--compare" => options.compare = Some(value("--compare")?),
            "--streams" => options.streams = Some(parse_count(&value("--streams")?, "--streams")?),
            "--windows" => options.windows = parse_count(&value("--windows")?, "--windows")?,
            "--label-every" => {
                options.label_every = parse_count(&value("--label-every")?, "--label-every")?;
            }
            "--connections" => {
                options.connections = Some(parse_count(&value("--connections")?, "--connections")?);
            }
            "--idle-fraction" => {
                let raw = value("--idle-fraction")?;
                options.idle_fraction = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..1.0).contains(f))
                    .ok_or(format!(
                        "--idle-fraction: {raw:?} is not a fraction in [0, 1)"
                    ))?;
            }
            "--transport" => options.transport = value("--transport")?.parse()?,
            "--event-loops" => {
                options.event_loops = parse_count(&value("--event-loops")?, "--event-loops")?;
            }
            "--shards" => options.shards = parse_count(&value("--shards")?, "--shards")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn parse_count(raw: &str, name: &str) -> Result<usize, String> {
    raw.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or(format!("{name}: {raw:?} is not a positive count"))
}

/// One request line for slot `i` of a client: app-level or counter-level
/// according to `app_share`, deterministic per (client, slot). `tier`
/// rides along on every request (a no-op on the wire for `Tier::F64`).
fn request_line(client_index: usize, i: usize, app_share: u32, tier: Tier) -> String {
    let pick = ((i * 97 + client_index * 31) % 100) as u32;
    if pick < app_share {
        let spec = APP_SPECS[(i + client_index) % APP_SPECS.len()];
        Request::EstimateApp {
            platform: "skylake".to_string(),
            app: spec.to_string(),
            tier,
        }
        .to_line()
    } else {
        let counts: Vec<(String, f64)> = GOOD_SET
            .iter()
            .map(|n| (n.to_string(), 1.0e10 + (i % 7) as f64 * 1.0e9))
            .collect();
        Request::Estimate {
            platform: "skylake".to_string(),
            counts,
            tier,
        }
        .to_line()
    }
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            log::error("loadgen", &message, &[]);
            std::process::exit(2);
        }
    };
    if options.streams.is_some() {
        run_streams(&options);
        return;
    }

    // Either target an external server or stand one up in-process.
    let local_server;
    let addr = match &options.addr {
        Some(addr) => addr.clone(),
        None => {
            println!(
                "starting in-process server ({} inference workers, {} transport, {} shard(s), \
                 metrics {}, tracing {}, health {})...",
                options.workers,
                options.transport,
                options.shards,
                if options.no_metrics { "off" } else { "on" },
                if options.no_trace { "off" } else { "on" },
                if options.no_health { "off" } else { "on" }
            );
            let router = Arc::new(
                ServiceConfig::default()
                    .workers(options.workers)
                    .cache_capacity(1024)
                    .seed(42)
                    .metrics(!options.no_metrics)
                    .tracing(!options.no_trace)
                    .health(!options.no_health)
                    .transport(options.transport)
                    .event_loops(options.event_loops)
                    .build_sharded(options.shards)
                    .expect("build service"),
            );
            let pmcs: Vec<String> = GOOD_SET.iter().map(|s| s.to_string()).collect();
            let ladder: Vec<String> = (0..10)
                .flat_map(|i| {
                    [
                        format!("dgemm:{}", 7_000 + 1_900 * i),
                        format!("fft:{}", 23_000 + 1_300 * i),
                    ]
                })
                .collect();
            // Every shard trains the same model, so whichever shard owns
            // skylake after routing answers identically.
            for shard in 0..router.shard_count() {
                router
                    .shard(shard)
                    .train_online("skylake", &pmcs, &ladder)
                    .expect("train online model");
            }
            local_server =
                Server::start_router(router, "127.0.0.1:0").expect("bind ephemeral port");
            local_server.addr().to_string()
        }
    };

    // Warm the run cache so app-level queries measure serving, not the
    // simulator.
    let mut warm = Client::connect(addr.as_str()).expect("connect for warm-up");
    for spec in APP_SPECS {
        warm.estimate_app("skylake", spec)
            .expect("warm-up estimate");
    }
    let warm_counts: Vec<(String, f64)> =
        GOOD_SET.iter().map(|n| (n.to_string(), 2.0e10)).collect();
    warm.estimate("skylake", &warm_counts)
        .expect("warm-up counter estimate");
    // Connection-scale mode: open the idle herd before the timed run and
    // size the active client pool from what's left of the budget.
    let (active_clients, idle_conns) = match options.connections {
        Some(total) => {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let active =
                (((total as f64) * (1.0 - options.idle_fraction)).round() as usize).clamp(1, total);
            let idle = total - active;
            println!("opening {idle} idle connections ({active} active)...");
            let opened = Instant::now();
            let conns = open_idle_connections(&addr, idle);
            println!(
                "{} idle connections open and probed in {:.2} s",
                conns.len(),
                opened.elapsed().as_secs_f64()
            );
            (active, conns)
        }
        None => (options.clients, Vec::new()),
    };
    let load_spec = match options.duration_secs {
        Some(secs) => format!("{secs} s wall-clock budget"),
        None => format!("{} requests", options.requests),
    };
    println!(
        "warmed {} app specs; {} clients x {load_spec}, pipeline depth {}, {}% app-level, \
         tier {}, against {addr}",
        APP_SPECS.len(),
        active_clients,
        options.pipeline,
        options.app_share,
        options.tier.as_str()
    );

    // In-flight trace sampler: every N completed requests (across all
    // clients) fetch the most recent completed trace over a dedicated
    // connection — never the pipelining connections, whose reply stream
    // must stay one line per request.
    let sampler = options.trace_sample.map(|every| {
        let client = Client::connect(addr.as_str()).expect("connect trace sampler");
        Arc::new(TraceSampler {
            every,
            completed: AtomicUsize::new(0),
            client: Mutex::new(client),
        })
    });

    // One timed pass per requested tier over the same warmed server —
    // `both` therefore compares the tiers with identical cache state.
    let mut passes: Vec<(Tier, PassResult)> = Vec::new();
    for &tier in options.tier.passes() {
        let pass = run_pass(&addr, &options, tier, active_clients, sampler.clone());
        let label = tier.as_str();
        println!(
            "[tier={label}] {} estimates in {:.2} s -> {:.0} estimates/sec",
            pass.total,
            pass.elapsed_secs,
            pass.throughput_eps()
        );
        println!(
            "[tier={label}] latency (per request, amortised over the pipeline): p50 {:?}  \
             p90 {:?}  p99 {:?}  p99.9 {:?}  max {:?}",
            pass.percentile(50.0),
            pass.percentile(90.0),
            pass.percentile(99.0),
            pass.percentile(99.9),
            pass.max()
        );
        passes.push((tier, pass));
    }

    // Every idle connection must still answer after the run: the front
    // end kept them alive while the active herd saturated it.
    let idle_held = idle_conns.len();
    let idle_probe_failures = probe_all_idle(&idle_conns);
    drop(idle_conns);
    if idle_held > 0 {
        println!(
            "idle connections after the run: {}/{idle_held} still answering STATS \
             ({idle_probe_failures} failed)",
            idle_held - idle_probe_failures
        );
    }

    // Headline numbers come from the first pass (f64 when comparing both
    // tiers), keeping them comparable with pre-tier baselines; the
    // per-tier p50/p99 columns carry the comparison.
    let headline = &passes[0].1;
    let summary = Summary {
        clients: active_clients,
        workers: options.workers,
        pipeline: options.pipeline,
        app_share: options.app_share,
        tier: options.tier.as_str(),
        tier_latency: passes
            .iter()
            .map(|(tier, pass)| {
                (
                    tier.as_str(),
                    as_micros(pass.percentile(50.0)),
                    as_micros(pass.percentile(99.0)),
                )
            })
            .collect(),
        connections: options.connections,
        idle_fraction: options.idle_fraction,
        idle_connections: idle_held,
        idle_probe_failures,
        transport: options.transport,
        shards: options.shards,
        total: headline.total,
        elapsed_secs: headline.elapsed_secs,
        throughput_eps: headline.throughput_eps(),
        p50_us: as_micros(headline.percentile(50.0)),
        p90_us: as_micros(headline.percentile(90.0)),
        p99_us: as_micros(headline.percentile(99.0)),
        p999_us: as_micros(headline.percentile(99.9)),
        max_us: as_micros(headline.max()),
    };
    if let Some(path) = &options.json {
        match std::fs::write(path, summary.to_json()) {
            Ok(()) => println!("wrote run summary to {path}"),
            Err(e) => log::error("loadgen", &format!("writing {path}: {e}"), &[]),
        }
    }
    if let Some(path) = &options.compare {
        match std::fs::read_to_string(path) {
            Ok(baseline) => summary.print_comparison(path, &baseline),
            Err(e) => log::error("loadgen", &format!("reading {path}: {e}"), &[]),
        }
    }
    if let Ok(mut client) = Client::connect(addr.as_str()) {
        if let Ok(stats) = client.stats() {
            let line: Vec<String> = stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("server stats: {}", line.join(" "));
        }
        if let Ok(lines) = client.metrics() {
            print_server_percentiles(&lines);
        }
        if let Ok(lines) = client.trace(TraceScope::Slowest, None) {
            match Trace::parse_dump(&lines) {
                Ok(traces) if !traces.is_empty() => {
                    print_trace(&traces[0], "slowest request server-side");
                }
                _ => println!("slowest request server-side: no trace retained (tracing off?)"),
            }
        }
        let _ = client.quit();
    }
    // Connection-scale acceptance: a dropped idle connection is a
    // failure, not a footnote — exit nonzero so CI gates on it.
    if idle_probe_failures > 0 {
        log::error(
            "loadgen",
            "idle connections stopped answering after the run",
            &[("failed", &idle_probe_failures.to_string())],
        );
        std::process::exit(1);
    }
}

/// One timed pass's sorted latencies and wall clock.
struct PassResult {
    total: usize,
    elapsed_secs: f64,
    /// Sorted ascending.
    latencies: Vec<Duration>,
}

impl PassResult {
    fn throughput_eps(&self) -> f64 {
        self.total as f64 / self.elapsed_secs
    }

    fn percentile(&self, p: f64) -> Duration {
        let index = ((self.total as f64 * p / 100.0).ceil() as usize).clamp(1, self.total) - 1;
        self.latencies[index]
    }

    fn max(&self) -> Duration {
        self.latencies[self.total - 1]
    }
}

/// One timed load pass on `tier`: every active client fires its budget
/// of pipelined batches and reports per-request latencies.
fn run_pass(
    addr: &str,
    options: &Options,
    tier: Tier,
    active_clients: usize,
    sampler: Option<Arc<TraceSampler>>,
) -> PassResult {
    let started = Instant::now();
    let deadline = options
        .duration_secs
        .map(|secs| started + Duration::from_secs(secs));
    let handles: Vec<_> = (0..active_clients)
        .map(|client_index| {
            let addr = addr.to_string();
            let requests = options.requests;
            let depth = options.pipeline;
            let app_share = options.app_share;
            let sampler = sampler.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).expect("client connect");
                // The request mix repeats with period 700 (lcm of the
                // pick/spec/count cycles): precompute one period so the
                // timed loop measures serving, not request formatting.
                let period = 700;
                let pattern: Vec<String> = (0..period)
                    .map(|i| request_line(client_index, i, app_share, tier))
                    .collect();
                let mut latencies = Vec::with_capacity(requests);
                let mut sent = 0;
                let mut lines: Vec<String> = Vec::with_capacity(depth);
                loop {
                    // Fixed-count mode stops at the request budget;
                    // duration mode stops at the wall-clock deadline.
                    let batch = match deadline {
                        Some(deadline) => {
                            if Instant::now() >= deadline {
                                break;
                            }
                            depth
                        }
                        None => {
                            if sent >= requests {
                                break;
                            }
                            depth.min(requests - sent)
                        }
                    };
                    lines.clear();
                    lines.extend((sent..sent + batch).map(|i| pattern[i % period].clone()));
                    let fired = Instant::now();
                    let replies = client.raw_pipelined(&lines).expect("pipelined batch");
                    let per_request = fired.elapsed() / batch as u32;
                    for reply in &replies {
                        let estimate = parse_estimate_reply(reply).expect("estimate reply");
                        assert!(estimate.joules.is_finite());
                        latencies.push(per_request);
                    }
                    sent += batch;
                    if let Some(sampler) = &sampler {
                        sampler.note(batch);
                    }
                }
                let _ = client.quit();
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    PassResult {
        total: latencies.len(),
        elapsed_secs,
        latencies,
    }
}

/// Streaming-ingestion mode: `--streams N` concurrent telemetry streams,
/// `--windows` pushed windows each, poll latency measured one round trip
/// at a time.
fn run_streams(options: &Options) {
    let streams = options.streams.expect("streaming mode");
    let clients = options.clients.min(streams);
    let local_server;
    let addr = match &options.addr {
        Some(addr) => addr.clone(),
        None => {
            println!(
                "starting in-process server ({} inference workers, {} transport, {} shard(s), \
                 metrics {}, tracing {}, health {})...",
                options.workers,
                options.transport,
                options.shards,
                if options.no_metrics { "off" } else { "on" },
                if options.no_trace { "off" } else { "on" },
                if options.no_health { "off" } else { "on" }
            );
            let router = Arc::new(
                ServiceConfig::default()
                    .workers(options.workers)
                    .cache_capacity(1024)
                    .seed(42)
                    .metrics(!options.no_metrics)
                    .tracing(!options.no_trace)
                    .health(!options.no_health)
                    .transport(options.transport)
                    .event_loops(options.event_loops)
                    .build_sharded(options.shards)
                    .expect("build service"),
            );
            local_server =
                Server::start_router(router, "127.0.0.1:0").expect("bind ephemeral port");
            local_server.addr().to_string()
        }
    };
    println!(
        "{streams} streams x {} windows (every {}th labelled) over {clients} clients, \
         pipeline depth {}, against {addr}",
        options.windows, options.label_every, options.pipeline
    );

    // Every client opens its streams before any window is pushed, so the
    // timed ingest phase runs with all N streams concurrently open.
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|client_index| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let windows = options.windows;
            let label_every = options.label_every;
            let depth = options.pipeline;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).expect("client connect");
                let owned: Vec<usize> = (client_index..streams).step_by(clients).collect();
                for &s in &owned {
                    client
                        .stream_open(&format!("lg-{s}"), "synthetic", "skylake", 32)
                        .expect("stream open");
                }
                barrier.wait();
                let ingest_started = Instant::now();
                let mut pushed = 0usize;
                let mut poll_latencies: Vec<Duration> = Vec::with_capacity(windows);
                let mut lines: Vec<String> = Vec::with_capacity(depth);
                for w in 0..windows {
                    let window = w as u64;
                    let labelled = (w + 1) % label_every == 0;
                    for chunk in owned.chunks(depth) {
                        lines.clear();
                        for &s in chunk {
                            let (counts, joules) = synthetic_window(s as u64, window);
                            lines.push(
                                Request::StreamPush {
                                    id: format!("lg-{s}"),
                                    window,
                                    counts,
                                    joules: labelled.then_some(joules),
                                }
                                .to_line(),
                            );
                        }
                        let replies = client.raw_pipelined(&lines).expect("pipelined pushes");
                        for reply in &replies {
                            assert!(reply.starts_with("OK "), "push rejected: {reply}");
                        }
                        pushed += chunk.len();
                    }
                    // One individually timed POLL per window round — the
                    // per-window estimate latency, streams visited in
                    // rotation.
                    let probe = owned[w % owned.len()];
                    let fired = Instant::now();
                    let status = client
                        .stream_poll(&format!("lg-{probe}"))
                        .expect("stream poll");
                    poll_latencies.push(fired.elapsed());
                    assert!(status.watts.is_finite());
                }
                (pushed, ingest_started.elapsed(), poll_latencies, client)
            })
        })
        .collect();
    let mut pushed_total = 0usize;
    let mut poll_latencies: Vec<Duration> = Vec::new();
    let mut clients_alive: Vec<Client> = Vec::new();
    // The barrier aligns every thread's ingest start, so the ingest
    // wall-clock is the slowest thread's elapsed — opens excluded.
    let mut elapsed = Duration::ZERO;
    for handle in handles {
        let (pushed, thread_elapsed, latencies, client) = handle.join().expect("client thread");
        pushed_total += pushed;
        elapsed = elapsed.max(thread_elapsed);
        poll_latencies.extend(latencies);
        clients_alive.push(client);
    }

    // Server-side view while every stream is still open, then close them.
    let mut open_streams = 0usize;
    let mut refit_swaps = 0u64;
    let mut health_failure = None;
    if let Ok(mut client) = Client::connect(addr.as_str()) {
        if let Ok(stats) = client.stats() {
            for (k, v) in &stats {
                match k.as_str() {
                    "streams" => open_streams = v.parse().unwrap_or(0),
                    "stream-refits" => refit_swaps = v.parse().unwrap_or(0),
                    _ => {}
                }
            }
        }
        // Model-health acceptance: the labelled pushes above must have
        // fed the calibration tracker, and empirical PI coverage must be
        // a sane fraction. Only checkable on the in-process server —
        // an external `--addr` target may run with health disabled.
        if options.addr.is_none() && !options.no_health {
            health_failure = check_stream_health(&mut client);
        }
        let _ = client.quit();
    }
    for (client_index, mut client) in clients_alive.into_iter().enumerate() {
        for s in (client_index..streams).step_by(clients) {
            let _ = client.stream_close(&format!("lg-{s}"));
        }
        let _ = client.quit();
    }

    poll_latencies.sort_unstable();
    let polls = poll_latencies.len();
    let percentile = |p: f64| {
        let index = ((polls as f64 * p / 100.0).ceil() as usize).clamp(1, polls) - 1;
        poll_latencies[index]
    };
    let ingest_wps = pushed_total as f64 / elapsed.as_secs_f64();
    println!(
        "{pushed_total} windows ingested across {open_streams} concurrently open streams \
         in {:.2} s -> {ingest_wps:.0} windows/sec",
        elapsed.as_secs_f64()
    );
    println!(
        "estimate latency (STREAM POLL round trip, {polls} samples): p50 {:?}  p95 {:?}  \
         p99 {:?}  max {:?}",
        percentile(50.0),
        percentile(95.0),
        percentile(99.0),
        poll_latencies[polls - 1]
    );
    println!("background refit swaps completed server-side: {refit_swaps}");
    let summary = StreamSummary {
        streams,
        clients,
        windows: options.windows,
        label_every: options.label_every,
        total_windows: pushed_total,
        elapsed_secs: elapsed.as_secs_f64(),
        ingest_wps,
        poll_p50_us: as_micros(percentile(50.0)),
        poll_p95_us: as_micros(percentile(95.0)),
        poll_p99_us: as_micros(percentile(99.0)),
        refit_swaps,
    };
    if let Some(path) = &options.json {
        match std::fs::write(path, summary.to_json()) {
            Ok(()) => println!("wrote run summary to {path}"),
            Err(e) => log::error("loadgen", &format!("writing {path}: {e}"), &[]),
        }
    }
    if let Some(path) = &options.compare {
        match std::fs::read_to_string(path) {
            Ok(baseline) => summary.print_comparison(path, &baseline),
            Err(e) => log::error("loadgen", &format!("reading {path}: {e}"), &[]),
        }
    }
    if let Some(reason) = health_failure {
        log::error(
            "loadgen",
            "model-health acceptance check failed",
            &[("reason", &reason)],
        );
        std::process::exit(1);
    }
}

/// Streaming-mode acceptance check over the `HEALTH` verb: returns a
/// failure reason, or `None` when the calibration rows look sane.
fn check_stream_health(client: &mut Client) -> Option<String> {
    let rows = match client.health() {
        Ok(rows) => rows,
        Err(e) => return Some(format!("HEALTH failed: {e}")),
    };
    let calibration: Vec<_> = rows
        .iter()
        .filter_map(|row| match row {
            HealthRow::Calibration { snapshot, .. } => Some(snapshot),
            HealthRow::Additivity { .. } => None,
        })
        .collect();
    if calibration.is_empty() {
        return Some("no calibration rows after labelled pushes".to_string());
    }
    for c in &calibration {
        if c.samples == 0 {
            return Some(format!("calibration row for {} has no samples", c.platform));
        }
        if !(0.0..=1.0).contains(&c.coverage) {
            return Some(format!(
                "PI coverage {} out of range for {}",
                c.coverage, c.platform
            ));
        }
        println!(
            "model health {}: {} labelled window(s), MAE {:.3} J, MPE {:+.2}%, \
             PI coverage {:.0}%, state {}",
            c.platform,
            c.samples,
            c.mae,
            c.mpe,
            c.coverage * 100.0,
            c.state.as_str()
        );
    }
    None
}

fn as_micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Open `count` idle connections in parallel, probing each with one
/// `STATS` round trip so a connection that never got accepted fails
/// loudly at open rather than silently at the end-of-run recheck.
fn open_idle_connections(addr: &str, count: usize) -> Vec<TcpStream> {
    if count == 0 {
        return Vec::new();
    }
    let threads = count.min(16);
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.to_string();
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut conns = Vec::new();
                while next.fetch_add(1, Ordering::Relaxed) < count {
                    let conn = TcpStream::connect(addr.as_str()).expect("idle connect");
                    conn.set_nodelay(true).expect("idle nodelay");
                    probe_stats(&conn).expect("idle connection STATS probe at open");
                    conns.push(conn);
                }
                conns
            })
        })
        .collect();
    let mut conns = Vec::with_capacity(count);
    for handle in handles {
        conns.extend(handle.join().expect("idle opener thread"));
    }
    conns
}

/// Re-probe every idle connection (in parallel — an idle connection on
/// the evented transport sits in the cold tier, so replies can take a
/// few sweep periods each) and count the ones that no longer answer.
fn probe_all_idle(conns: &[TcpStream]) -> usize {
    if conns.is_empty() {
        return 0;
    }
    let threads = conns.len().min(16);
    let failures = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                while let Some(conn) = conns.get(next.fetch_add(1, Ordering::Relaxed)) {
                    if probe_stats(conn).is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    failures.into_inner()
}

/// One `STATS` round trip over a raw idle connection: write the request,
/// read until the reply's newline. Any I/O failure or early EOF means
/// the server dropped the connection.
fn probe_stats(mut conn: &TcpStream) -> std::io::Result<()> {
    conn.write_all(b"STATS\n")?;
    let mut chunk = [0u8; 256];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the idle connection",
            ));
        }
        if chunk[..n].contains(&b'\n') {
            return Ok(());
        }
    }
}

/// Streaming-mode headline numbers, written by `--json` and read back by
/// `--compare`.
struct StreamSummary {
    streams: usize,
    clients: usize,
    windows: usize,
    label_every: usize,
    total_windows: usize,
    elapsed_secs: f64,
    ingest_wps: f64,
    poll_p50_us: f64,
    poll_p95_us: f64,
    poll_p99_us: f64,
    refit_swaps: u64,
}

/// The dispatched SIMD instruction set (and the raw `PMCA_SIMD`
/// override, if one was set) as JSON fields — recorded in every
/// baseline so numbers committed from different machines are never
/// silently compared across ISAs.
fn simd_json_fields() -> String {
    let isa = pmca_simd::Isa::active().as_str();
    match pmca_simd::override_request() {
        Some(req) => format!(
            "  \"simd_isa\": \"{isa}\",\n  \"simd_override\": \"{}\",\n",
            req.replace('"', "'")
        ),
        None => format!("  \"simd_isa\": \"{isa}\",\n"),
    }
}

/// Print the ISA header row of a `--compare`, warning when the
/// baseline ran on different kernels (or predates ISA recording).
fn print_simd_comparison(baseline: &str) {
    let now = pmca_simd::Isa::active().as_str();
    let now_line = match pmca_simd::override_request() {
        Some(req) => format!("{now} (PMCA_SIMD={req})"),
        None => now.to_string(),
    };
    match json_string(baseline, "simd_isa") {
        Some(base) => {
            println!("  simd isa: baseline {base}, now {now_line}");
            if base != now {
                println!("  warning: simd isa differs — kernel numbers are not like-for-like");
            }
        }
        None => println!("  simd isa: baseline unrecorded, now {now_line}"),
    }
}

/// Pull one string field out of a flat JSON object, the sibling of
/// [`json_number`] for quoted values.
fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let after = &text[text.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let after = after.strip_prefix('"')?;
    Some(after[..after.find('"')?].to_string())
}

impl StreamSummary {
    fn to_json(&self) -> String {
        format!(
            "{{\n{simd}  \"streams\": {},\n  \"clients\": {},\n  \"windows\": {},\n  \
             \"label_every\": {},\n  \"total_windows\": {},\n  \"elapsed_secs\": {:.3},\n  \
             \"ingest_wps\": {:.1},\n  \"poll_p50_us\": {:.1},\n  \"poll_p95_us\": {:.1},\n  \
             \"poll_p99_us\": {:.1},\n  \"refit_swaps\": {}\n}}\n",
            self.streams,
            self.clients,
            self.windows,
            self.label_every,
            self.total_windows,
            self.elapsed_secs,
            self.ingest_wps,
            self.poll_p50_us,
            self.poll_p95_us,
            self.poll_p99_us,
            self.refit_swaps,
            simd = simd_json_fields()
        )
    }

    fn print_comparison(&self, path: &str, baseline: &str) {
        println!("comparison against {path}:");
        print_simd_comparison(baseline);
        let rows: [(&str, f64, bool); 4] = [
            ("ingest_wps", self.ingest_wps, true),
            ("poll_p50_us", self.poll_p50_us, false),
            ("poll_p95_us", self.poll_p95_us, false),
            ("poll_p99_us", self.poll_p99_us, false),
        ];
        for (key, current, higher_is_better) in rows {
            let Some(base) = json_number(baseline, key) else {
                println!("  {key:<15} baseline missing");
                continue;
            };
            if base == 0.0 {
                println!("  {key:<15} baseline {base:>10.1}  now {current:>10.1}");
                continue;
            }
            let delta = (current - base) / base * 100.0;
            let verdict = if (delta >= 0.0) == higher_is_better {
                "better"
            } else {
                "worse"
            };
            println!("  {key:<15} baseline {base:>10.1}  now {current:>10.1}  {delta:>+7.1}% ({verdict})");
        }
        for key in ["streams", "clients", "windows", "label_every"] {
            if let Some(base) = json_number(baseline, key) {
                let current = match key {
                    "streams" => self.streams as f64,
                    "clients" => self.clients as f64,
                    "windows" => self.windows as f64,
                    _ => self.label_every as f64,
                };
                if (base - current).abs() > f64::EPSILON {
                    println!(
                        "  warning: {key} differs (baseline {base:.0}, now {current:.0}) — \
                         numbers are not like-for-like"
                    );
                }
            }
        }
    }
}

/// One run's headline numbers, written by `--json` and read back by
/// `--compare`.
struct Summary {
    clients: usize,
    workers: usize,
    pipeline: usize,
    app_share: u32,
    /// The `--tier` mode this run used.
    tier: &'static str,
    /// One `(tier, p50_us, p99_us)` row per timed pass.
    tier_latency: Vec<(&'static str, f64, f64)>,
    connections: Option<usize>,
    idle_fraction: f64,
    idle_connections: usize,
    idle_probe_failures: usize,
    transport: Transport,
    shards: usize,
    total: usize,
    elapsed_secs: f64,
    throughput_eps: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

impl Summary {
    fn to_json(&self) -> String {
        let connections = match self.connections {
            Some(total) => format!(
                "  \"connections\": {},\n  \"idle_fraction\": {},\n  \
                 \"idle_connections\": {},\n  \"idle_probe_failures\": {},\n",
                total, self.idle_fraction, self.idle_connections, self.idle_probe_failures
            ),
            None => String::new(),
        };
        // One p50/p99 column pair per timed tier pass, e.g.
        // "f64_p50_us" / "fixed_p50_us" side by side on a --tier both run.
        let tiers: String = self
            .tier_latency
            .iter()
            .map(|(name, p50, p99)| {
                format!("  \"{name}_p50_us\": {p50:.1},\n  \"{name}_p99_us\": {p99:.1},\n")
            })
            .collect();
        format!(
            "{{\n{simd}  \"clients\": {},\n  \"workers\": {},\n  \"pipeline\": {},\n  \
             \"app_share\": {},\n  \"tier\": \"{}\",\n{tiers}{connections}  \
             \"transport\": \"{}\",\n  \
             \"shards\": {},\n  \"total\": {},\n  \"elapsed_secs\": {:.3},\n  \
             \"throughput_eps\": {:.1},\n  \"p50_us\": {:.1},\n  \"p90_us\": {:.1},\n  \
             \"p99_us\": {:.1},\n  \"p999_us\": {:.1},\n  \"max_us\": {:.1}\n}}\n",
            self.clients,
            self.workers,
            self.pipeline,
            self.app_share,
            self.tier,
            self.transport,
            self.shards,
            self.total,
            self.elapsed_secs,
            self.throughput_eps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
            simd = simd_json_fields()
        )
    }

    /// Print a metric-by-metric delta table against a `--json` baseline.
    /// Throughput deltas are "higher is better"; latency deltas are
    /// "lower is better" — the sign convention is printed per row.
    fn print_comparison(&self, path: &str, baseline: &str) {
        println!("comparison against {path}:");
        print_simd_comparison(baseline);
        let rows: [(&str, f64, bool); 6] = [
            ("throughput_eps", self.throughput_eps, true),
            ("p50_us", self.p50_us, false),
            ("p90_us", self.p90_us, false),
            ("p99_us", self.p99_us, false),
            ("p999_us", self.p999_us, false),
            ("max_us", self.max_us, false),
        ];
        for (key, current, higher_is_better) in rows {
            let Some(base) = json_number(baseline, key) else {
                println!("  {key:<15} baseline missing");
                continue;
            };
            if base == 0.0 {
                println!("  {key:<15} baseline {base:>10.1}  now {current:>10.1}");
                continue;
            }
            let delta = (current - base) / base * 100.0;
            let verdict = if (delta >= 0.0) == higher_is_better {
                "better"
            } else {
                "worse"
            };
            println!("  {key:<15} baseline {base:>10.1}  now {current:>10.1}  {delta:>+7.1}% ({verdict})");
        }
        // Per-tier latency rows, when the baseline also recorded the tier
        // (pre-tier baselines simply lack the key).
        for (name, p50, p99) in &self.tier_latency {
            for (suffix, current) in [("p50_us", *p50), ("p99_us", *p99)] {
                let key = format!("{name}_{suffix}");
                let Some(base) = json_number(baseline, &key) else {
                    println!("  {key:<15} baseline missing");
                    continue;
                };
                if base == 0.0 {
                    println!("  {key:<15} baseline {base:>10.1}  now {current:>10.1}");
                    continue;
                }
                let delta = (current - base) / base * 100.0;
                let verdict = if delta <= 0.0 { "better" } else { "worse" };
                println!(
                    "  {key:<15} baseline {base:>10.1}  now {current:>10.1}  \
                     {delta:>+7.1}% ({verdict})"
                );
            }
        }
        for key in ["clients", "workers", "pipeline", "app_share"] {
            if let Some(base) = json_number(baseline, key) {
                let current = match key {
                    "clients" => self.clients as f64,
                    "workers" => self.workers as f64,
                    "pipeline" => self.pipeline as f64,
                    _ => f64::from(self.app_share),
                };
                if (base - current).abs() > f64::EPSILON {
                    println!(
                        "  warning: {key} differs (baseline {base:.0}, now {current:.0}) — \
                         numbers are not like-for-like"
                    );
                }
            }
        }
    }
}

/// Pull one numeric field out of a flat JSON object without a JSON
/// dependency: finds `"key"`, skips `:` and whitespace, parses the
/// longest leading float.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after = &text[text.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Shared in-flight sampler: counts completed requests across client
/// threads and dumps one server-side trace each time the count crosses a
/// multiple of `every`.
struct TraceSampler {
    every: usize,
    completed: AtomicUsize,
    client: Mutex<Client>,
}

impl TraceSampler {
    fn note(&self, batch: usize) {
        let before = self.completed.fetch_add(batch, Ordering::Relaxed);
        let after = before + batch;
        if after / self.every > before / self.every {
            self.sample(after);
        }
    }

    fn sample(&self, completed: usize) {
        let Ok(mut client) = self.client.lock() else {
            return;
        };
        if let Ok(lines) = client.trace(TraceScope::Recent, Some(1)) {
            match Trace::parse_dump(&lines) {
                Ok(traces) if !traces.is_empty() => {
                    print_trace(
                        &traces[0],
                        &format!("trace sample at ~{completed} requests"),
                    );
                }
                _ => println!("trace sample at ~{completed} requests: none retained"),
            }
        }
    }
}

/// Print one trace as a "where did the time go" span breakdown.
fn print_trace(trace: &Trace, heading: &str) {
    println!(
        "{heading}: {} (trace {}, conn {}) total {:?}",
        trace.label,
        trace.id,
        trace.connection,
        Duration::from_nanos(trace.total_ns)
    );
    for (name, ns) in trace.span_durations() {
        // The whole-request span duplicates the total printed above.
        if name == "request" {
            continue;
        }
        println!("  {name:<16} {:?}", Duration::from_nanos(ns));
    }
}

/// Summarise the server-side view of the run: per-command latency
/// quantiles out of the `METRICS` exposition lines, e.g.
/// `pmca_serve_command_seconds{command="estimate",quantile="0.5"} 1.2e-5`.
fn print_server_percentiles(lines: &[String]) {
    if lines.is_empty() {
        println!("server metrics: disabled");
        return;
    }
    for command in ["estimate", "estimate-app"] {
        let quantile = |q: &str| -> Option<f64> {
            let prefix =
                format!(r#"pmca_serve_command_seconds{{command="{command}",quantile="{q}"}} "#);
            lines
                .iter()
                .find_map(|l| l.strip_prefix(&prefix))
                .and_then(|v| v.parse().ok())
        };
        let samples: u64 = lines
            .iter()
            .find_map(|l| {
                l.strip_prefix(&format!(
                    r#"pmca_serve_command_seconds_count{{command="{command}"}} "#
                ))
            })
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if samples == 0 {
            println!("server-side {command:>12} latency: no samples (metrics disabled?)");
            continue;
        }
        if let (Some(p50), Some(p95), Some(p99)) =
            (quantile("0.5"), quantile("0.95"), quantile("0.99"))
        {
            println!(
                "server-side {command:>12} latency: p50 {:?}  p95 {:?}  p99 {:?}",
                Duration::from_secs_f64(p50),
                Duration::from_secs_f64(p95),
                Duration::from_secs_f64(p99)
            );
        }
    }
    for counter in [
        "pmca_cache_hits_total",
        "pmca_cache_misses_total",
        "pmca_engine_queue_wait_seconds_count",
    ] {
        if let Some(v) = lines
            .iter()
            .find_map(|l| l.strip_prefix(&format!("{counter} ")))
        {
            println!("server-side {counter}: {v}");
        }
    }
}
