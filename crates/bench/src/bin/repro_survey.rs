//! Regenerate the paper's full-catalog additivity sweep (the unnumbered
//! result behind Class B's selection): test *every* filtered event on
//! both platforms, against DGEMM/FFT compounds and against diverse-suite
//! compounds.
//!
//! Paper reference points: *no* PMC additive within 5% over the full
//! suite on either platform; "a number of PMCs … commonly additive" for
//! DGEMM/FFT on Skylake. Pass `--quick` for a smaller sweep.

use pmca_bench::{quick_requested, timed};
use pmca_core::survey::{run_survey, SurveyConfig};
use pmca_core::tables::TextTable;
use pmca_cpusim::PlatformSpec;

fn main() {
    let config = if quick_requested() {
        SurveyConfig {
            kernel_compounds: 4,
            diverse_compounds: 8,
            runs: 2,
            ..SurveyConfig::default()
        }
    } else {
        SurveyConfig {
            kernel_compounds: 12,
            diverse_compounds: 50,
            runs: 3,
            ..SurveyConfig::default()
        }
    };
    let mut t = TextTable::new(
        "Full-catalog additivity survey (tolerance 5%)",
        &[
            "platform",
            "events",
            "additive for DGEMM/FFT",
            "additive for diverse suite",
        ],
    );
    for platform in [PlatformSpec::intel_haswell(), PlatformSpec::intel_skylake()] {
        let name = platform.micro_arch.to_string();
        let results = timed(&format!("survey on {name}"), || {
            run_survey(platform, &config)
        });
        t.row(vec![
            name,
            results.surviving_events.to_string(),
            results.kernel_additive().to_string(),
            results.diverse_additive().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(paper: zero PMCs additive over the diverse suite on either platform;\n\
         a substantial additive population exists for the two MKL kernels)"
    );
}
