//! Regenerate Tables 2–5: the Class A experiment on the simulated Haswell
//! platform. Pass `--quick` (or set `PMCA_QUICK`) for a smoke-scale run.

use pmca_bench::{quick_requested, timed};
use pmca_core::class_a::{run_class_a, ClassAConfig};

fn main() {
    let config = if quick_requested() {
        ClassAConfig::smoke()
    } else {
        ClassAConfig::paper()
    };
    let results = timed(
        "Class A (Haswell): additivity test + LR/RF/NN ladders",
        || run_class_a(&config),
    );
    println!(
        "training points: {} base applications; test points: {} compound applications\n",
        results.train_points, results.test_points
    );
    println!("{}", results.table2());
    println!("{}", results.table3());
    println!("{}", results.table4());
    println!("{}", results.table5());

    let best = |rows: &[pmca_core::class_a::LadderRow]| {
        rows.iter()
            .min_by(|a, b| {
                a.errors
                    .avg
                    .partial_cmp(&b.errors.avg)
                    .expect("finite errors")
            })
            .expect("non-empty ladder")
            .model
            .clone()
    };
    println!(
        "headline: LR improves {:.2}% → {:.2}% (best {}), RF {:.2}% → {:.2}% (best {}), NN {:.2}% → {:.2}% (best {})",
        results.lr[0].errors.avg,
        results.lr.iter().map(|r| r.errors.avg).fold(f64::INFINITY, f64::min),
        best(&results.lr),
        results.rf[0].errors.avg,
        results.rf.iter().map(|r| r.errors.avg).fold(f64::INFINITY, f64::min),
        best(&results.rf),
        results.nn[0].errors.avg,
        results.nn.iter().map(|r| r.errors.avg).fold(f64::INFINITY, f64::min),
        best(&results.nn),
    );
    println!("(paper: LR 31.2% → 18.01% at LR5; RF best 23.68% at RF4; NN best 24.06% at NN4)");
}
