//! Regenerate Table 1: specifications of the two simulated platforms.

use pmca_core::tables::TextTable;
use pmca_cpusim::PlatformSpec;

fn main() {
    let hw = PlatformSpec::intel_haswell();
    let sk = PlatformSpec::intel_skylake();
    let mut t = TextTable::new(
        "Table 1. Specification of the Intel Haswell and Intel Skylake multicore CPUs",
        &[
            "Technical specification",
            "Intel Haswell server",
            "Intel Skylake server",
        ],
    );
    let row = |label: &str, a: String, b: String| vec![label.to_string(), a, b];
    t.row(row("Processor", hw.processor.clone(), sk.processor.clone()));
    t.row(row("OS", hw.os.clone(), sk.os.clone()));
    t.row(row(
        "Micro-architecture",
        hw.micro_arch.to_string(),
        sk.micro_arch.to_string(),
    ));
    t.row(row(
        "Thread(s) per core",
        hw.threads_per_core.to_string(),
        sk.threads_per_core.to_string(),
    ));
    t.row(row(
        "Cores per socket",
        hw.cores_per_socket.to_string(),
        sk.cores_per_socket.to_string(),
    ));
    t.row(row(
        "Socket(s)",
        hw.sockets.to_string(),
        sk.sockets.to_string(),
    ));
    t.row(row(
        "NUMA node(s)",
        hw.numa_nodes.to_string(),
        sk.numa_nodes.to_string(),
    ));
    t.row(row(
        "L1d/L1i cache",
        format!("{} KB/{} KB", hw.l1d_kib, hw.l1i_kib),
        format!("{} KB/{} KB", sk.l1d_kib, sk.l1i_kib),
    ));
    t.row(row(
        "L2 cache",
        format!("{} KB", hw.l2_kib),
        format!("{} KB", sk.l2_kib),
    ));
    t.row(row(
        "L3 cache",
        format!("{} KB", hw.l3_kib),
        format!("{} KB", sk.l3_kib),
    ));
    t.row(row(
        "Main memory",
        format!("{} GB DDR4", hw.memory_gib),
        format!("{} GB DDR4", sk.memory_gib),
    ));
    t.row(row(
        "TDP",
        format!("{} W", hw.tdp_watts),
        format!("{} W", sk.tdp_watts),
    ));
    t.row(row(
        "Idle power",
        format!("{} W", hw.idle_power_watts),
        format!("{} W", sk.idle_power_watts),
    ));
    print!("{}", t.render());
}
