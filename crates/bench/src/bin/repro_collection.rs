//! Regenerate the collection-economics narrative of Sect. 5: events
//! offered per platform, events surviving the low-count/reproducibility
//! filter, and application runs needed to collect the full catalog.
//!
//! Paper reference points: 164 → 151 events and ≈ 53 runs on Haswell;
//! 385 → 323 events and ≈ 99 runs on Skylake.

use pmca_bench::timed;
use pmca_core::tables::TextTable;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_pmctools::filter::EventFilter;
use pmca_pmctools::scheduler::schedule;
use pmca_workloads::{Dgemm, Fft2d, Hpcg};

fn main() {
    let mut t = TextTable::new(
        "Collection economics (paper: 164→151 events, ≈53 runs on Haswell; 385→323, ≈99 on Skylake)",
        &["platform", "events offered", "after filter", "runs to collect all", "runs (survivors only)"],
    );
    for spec in [PlatformSpec::intel_haswell(), PlatformSpec::intel_skylake()] {
        let name = spec.micro_arch.to_string();
        let row = timed(&format!("collection survey on {name}"), || {
            let mut machine = Machine::new(spec, 2024);
            let offered = machine.catalog().len();
            let dgemm = Dgemm::new(7_000);
            let fft = Fft2d::new(23_000);
            let hpcg = Hpcg::new(1.0);
            let survivors = EventFilter::default()
                .survivors(&mut machine, &[&dgemm, &fft, &hpcg])
                .expect("filter probes schedule");
            let groups_all = schedule(machine.catalog(), &machine.catalog().all_ids())
                .expect("full catalog schedules");
            let groups_survivors =
                schedule(machine.catalog(), &survivors).expect("survivor set schedules");
            vec![
                name,
                offered.to_string(),
                survivors.len().to_string(),
                groups_all.len().to_string(),
                groups_survivors.len().to_string(),
            ]
        });
        t.row(row);
    }
    print!("{}", t.render());
}
