//! Ablation sweeps for the design choices called out in DESIGN.md:
//!
//! 1. **interference strength** — scale the interference model from 0 to
//!    1.5× and watch the additivity errors of the six Class A PMCs (at 0
//!    every counter becomes additive: non-additivity is entirely an
//!    interference phenomenon in this simulator);
//! 2. **additivity tolerance** — sweep the stage-2 tolerance and count how
//!    many of the 18 Class B PMCs pass (the paper's 5% sits on a plateau
//!    between the sub-1% additive set and the ≥15% non-additive set);
//! 3. **meter noise** — degrade the WattsUp reading noise and watch the
//!    best linear model's test error float up: measurement quality bounds
//!    model quality.

use pmca_additivity::checker::{AdditivityChecker, CompoundCase};
use pmca_additivity::AdditivityTest;
use pmca_bench::timed;
use pmca_core::class_a::CLASS_A_PMCS;
use pmca_core::class_b::{PA, PNA};
use pmca_core::tables::TextTable;
use pmca_cpusim::interference::InterferenceModel;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_workloads::suite::{class_a_compound_pairs, class_b_compound_pairs};

fn interference_sweep() {
    let mut t = TextTable::new(
        "Ablation 1: additivity error (%) of the Class A PMCs vs interference strength",
        &["PMC", "0.0×", "0.5×", "1.0×", "1.5×"],
    );
    let mut rows: Vec<Vec<String>> = CLASS_A_PMCS
        .iter()
        .map(|name| vec![name.to_string()])
        .collect();
    for scale in [0.0, 0.5, 1.0, 1.5] {
        let mut machine = Machine::new(PlatformSpec::intel_haswell(), 404);
        machine.set_interference(InterferenceModel::default().scaled(scale));
        let events = machine
            .catalog()
            .ids(&CLASS_A_PMCS)
            .expect("class A events");
        // Fixed-work compounds only: isolates the interference channel from
        // the adaptive-work channel.
        let cases: Vec<CompoundCase> = class_a_compound_pairs(24, 404)
            .into_iter()
            .filter(|(a, b)| !a.name().contains("stress") && !b.name().contains("stress"))
            .map(|(a, b)| CompoundCase::new(a, b))
            .collect();
        let report = AdditivityChecker::default()
            .check(&mut machine, &events, &cases)
            .expect("check runs");
        for (row, entry) in rows.iter_mut().zip(report.entries()) {
            row.push(format!("{:.1}", entry.max_error_pct));
        }
    }
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
}

fn tolerance_sweep() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 404);
    let names: Vec<&str> = PA.iter().chain(PNA.iter()).copied().collect();
    let events = machine.catalog().ids(&names).expect("class B events");
    let cases: Vec<CompoundCase> = class_b_compound_pairs(12, 404)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    // One measurement pass; re-grade under different tolerances.
    let report = AdditivityChecker::default()
        .check(&mut machine, &events, &cases)
        .expect("check runs");
    let mut t = TextTable::new(
        "Ablation 2: PMCs (of 18) passing the additivity test vs tolerance",
        &["tolerance %", "passing", "of which PA", "of which PNA"],
    );
    for tol in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let test = AdditivityTest::with_tolerance(tol);
        let passing: Vec<&str> = report
            .entries()
            .iter()
            .filter(|e| e.reproducible && test.passes(e.max_error_pct))
            .map(|e| e.name.as_str())
            .collect();
        let pa = passing.iter().filter(|n| PA.contains(n)).count();
        let pna = passing.len() - pa;
        t.row(vec![
            format!("{tol}"),
            passing.len().to_string(),
            pa.to_string(),
            pna.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(the paper's 5% threshold sits on the plateau separating the two populations)\n");
}

fn meter_noise_sweep() {
    use pmca_core::measure::build_dataset;
    use pmca_cpusim::app::Application;
    use pmca_mlkit::{LinearRegression, PredictionErrors, Regressor};
    use pmca_powermeter::{HclWattsUp, Methodology};
    use pmca_workloads::suite::class_b_regression_suite;

    let mut t = TextTable::new(
        "Ablation 3: LR on the additive PA set vs energy-measurement repetitions",
        &["methodology", "runs/point (max)", "LR-A avg err %"],
    );
    for (label, methodology) in [
        ("single-ish (quick)", Methodology::quick()),
        ("standard", Methodology::standard()),
        (
            "exhaustive",
            Methodology {
                precision: 0.01,
                confidence: 0.95,
                min_runs: 5,
                max_runs: 25,
            },
        ),
    ] {
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), 404);
        let mut meter = HclWattsUp::with_methodology(&machine, 404, methodology);
        let events = machine.catalog().ids(&PA).expect("PA events");
        let suite = class_b_regression_suite();
        let apps: Vec<&dyn Application> = suite.iter().step_by(10).map(|a| a.as_ref()).collect();
        let ds = build_dataset(&mut machine, &mut meter, &apps, &events, 1).expect("collection");
        let (train, test) = ds.split_exact(ds.len() / 5).expect("split");
        let mut lr = LinearRegression::paper_constrained();
        lr.fit(train.rows(), train.targets()).expect("fit");
        let err = PredictionErrors::evaluate(&lr, test.rows(), test.targets());
        t.row(vec![
            label.into(),
            methodology.max_runs.to_string(),
            format!("{:.2}", err.avg),
        ]);
    }
    print!("{}", t.render());
    println!("(the floor is the per-application energy personality, not meter noise)");
}

fn main() {
    timed("ablation 1: interference strength", interference_sweep);
    timed("ablation 2: tolerance sweep", tolerance_sweep);
    timed("ablation 3: measurement methodology", meter_noise_sweep);
}
