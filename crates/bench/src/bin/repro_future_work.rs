//! The paper's future-work direction, implemented: additivity-*weighted*
//! regression. Instead of dropping the most non-additive PMCs one by one
//! (the Class A ladder), keep all six but penalise each in proportion to
//! its additivity-test error. The paper asks specifically whether
//! additivity can reduce the **maximum** error — the weighted model is
//! evaluated on both the average and the maximum. (Spoiler: on a PMC set
//! where nothing is additive, the continuous relaxation loses to the
//! paper's discrete ladder — see the closing note the binary prints.)
//!
//! Pass `--quick` for a smoke-scale run.

use pmca_additivity::{AdditivityChecker, AdditivityTest, CompoundCase};
use pmca_bench::{quick_requested, timed};
use pmca_core::class_a::{ClassAConfig, CLASS_A_PMCS};
use pmca_core::measure::build_dataset;
use pmca_core::tables::{triple, TextTable};
use pmca_core::weighting::{additivity_weighted_lr, AdditivityPenalty};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{LinearRegression, PredictionErrors, Regressor};
use pmca_powermeter::HclWattsUp;
use pmca_workloads::suite::{class_a_base_suite, class_a_compound_pairs, class_a_compounds};

fn main() {
    let config = if quick_requested() {
        ClassAConfig::smoke()
    } else {
        ClassAConfig::paper()
    };
    let mut machine = Machine::new(PlatformSpec::intel_haswell(), config.seed);
    let mut meter = HclWattsUp::with_methodology(&machine, config.seed, config.methodology);
    let events = machine
        .catalog()
        .ids(&CLASS_A_PMCS)
        .expect("class A events");

    let (report, train, test) = timed("measurement (additivity + datasets)", || {
        let cases: Vec<CompoundCase> = class_a_compound_pairs(config.n_compounds, config.seed)
            .into_iter()
            .map(|(a, b)| CompoundCase::new(a, b))
            .collect();
        let test_cfg = AdditivityTest {
            runs: config.additivity_runs,
            ..AdditivityTest::default()
        };
        let report = AdditivityChecker::new(test_cfg)
            .check(&mut machine, &events, &cases)
            .expect("class A events schedule");
        let base = class_a_base_suite(config.n_base);
        let base_refs: Vec<&dyn Application> = base.iter().map(|a| a.as_ref()).collect();
        let train = build_dataset(
            &mut machine,
            &mut meter,
            &base_refs,
            &events,
            config.pmc_repeats,
        )
        .expect("collection");
        let compounds = class_a_compounds(config.n_compounds, config.seed);
        let comp_refs: Vec<&dyn Application> =
            compounds.iter().map(|c| c as &dyn Application).collect();
        let test = build_dataset(
            &mut machine,
            &mut meter,
            &comp_refs,
            &events,
            config.pmc_repeats,
        )
        .expect("collection");
        (report, train, test)
    });

    let mut t = TextTable::new(
        "Future work: additivity-weighted LR vs the hard-selection ladder endpoints",
        &["model", "PMCs kept", "errors (min, avg, max) %"],
    );

    // Baseline: plain fit on all six (≈ LR1).
    let mut plain = LinearRegression::paper_constrained();
    plain.fit(train.rows(), train.targets()).expect("fit");
    t.row(vec![
        "plain LR (≈ LR1)".into(),
        "6".into(),
        triple(&PredictionErrors::evaluate(
            &plain,
            test.rows(),
            test.targets(),
        )),
    ]);

    // Hard selection: best ladder rung (two most additive PMCs, ≈ LR5).
    let keep: Vec<String> = report
        .ranked()
        .iter()
        .take(2)
        .map(|e| e.name.clone())
        .collect();
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let train2 = train.select(&keep_refs).expect("subset");
    let test2 = test.select(&keep_refs).expect("subset");
    let mut hard = LinearRegression::paper_constrained();
    hard.fit(train2.rows(), train2.targets()).expect("fit");
    t.row(vec![
        "hard selection (≈ LR5)".into(),
        "2".into(),
        triple(&PredictionErrors::evaluate(
            &hard,
            test2.rows(),
            test2.targets(),
        )),
    ]);

    // Weighted: all six kept, penalty ∝ additivity error.
    for per_point in [0.5, 2.0, 10.0] {
        let weighted = additivity_weighted_lr(
            &train,
            &report,
            AdditivityPenalty {
                per_error_point: per_point,
            },
        )
        .expect("weighted fit");
        t.row(vec![
            format!("additivity-weighted (λ={per_point}/pt)"),
            "6".into(),
            triple(&PredictionErrors::evaluate(
                &weighted,
                test.rows(),
                test.targets(),
            )),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nMeasured outcome (a negative result worth reporting): on Class A, where *no*\n\
         counter is additive, proportional weighting penalises the least-bad proxies\n\
         along with the worst — and under a zero intercept, shrinking every\n\
         coefficient biases predictions downward. Mild weighting tracks the plain\n\
         fit; heavy weighting is strictly worse than the paper's discrete ladder.\n\
         Additivity works best as a selection criterion, exactly as the paper uses it."
    );
}
