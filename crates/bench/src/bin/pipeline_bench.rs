//! Before/after benchmark of the offline experiment pipeline.
//!
//! The offline rework has three levers: run memoization in the collector
//! (one simulation per repeat shared across every counter group), the
//! presorted-feature CART build (no per-node re-sorting), and the
//! work-stealing pool (`--jobs`). This binary measures each lever the way
//! `loadgen` measures the serving stack: the *before* column runs a
//! reference implementation of the pre-rework algorithm (unmemoized
//! per-group simulation; per-candidate re-sorting tree build) compiled
//! into this binary, the *after* columns run the shipped code at one
//! thread and at `--jobs` threads, and the harness asserts the outputs
//! are bit-identical before it reports a single number.
//!
//! ```text
//! cargo run --release -p pmca-bench --bin pipeline_bench -- \
//!     [--jobs N] [--iters K] [--json PATH]
//! ```
//!
//! `--json PATH` writes the summary as a JSON object — commit one as a
//! baseline (`results/BENCH_pipeline.json`).

use pmca_additivity::{AdditivityChecker, AdditivityMatrix, CompoundCase};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{k_fold_with_pool, LinearRegression, RandomForest, Regressor};
use pmca_parallel::{set_global_jobs, split_seed, ThreadPool};
use pmca_pmctools::collector::collect_sweeps_batch;
use pmca_pmctools::scheduler::schedule;
use pmca_stats::rng::{Rng, Xoshiro256pp};
use pmca_workloads::suite::class_b_compound_pairs;
use pmca_workloads::{Dgemm, Fft2d};
use std::hint::black_box;
use std::time::Instant;

/// The pre-rework CART build: re-sorts the node's rows for every
/// candidate feature at every node. Kept verbatim (minus export code) so
/// the *before* column measures the real replaced algorithm, and so the
/// harness can prove the presorted build picks identical splits.
mod reference {
    use pmca_stats::rng::{Rng, Xoshiro256pp};

    pub struct RefTreeParams {
        pub max_depth: usize,
        pub min_samples_leaf: usize,
        pub features_per_split: Option<usize>,
    }

    pub enum RefNode {
        Leaf {
            value: f64,
        },
        Split {
            feature: usize,
            threshold: f64,
            left: Box<RefNode>,
            right: Box<RefNode>,
        },
    }

    pub struct RefTree {
        pub params: RefTreeParams,
        pub seed: u64,
        pub root: Option<RefNode>,
    }

    impl RefTree {
        fn build(
            &self,
            x: &[Vec<f64>],
            y: &[f64],
            indices: &[usize],
            depth: usize,
            rng: &mut Xoshiro256pp,
        ) -> RefNode {
            let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
            if depth >= self.params.max_depth
                || indices.len() < 2 * self.params.min_samples_leaf
                || indices.iter().all(|&i| y[i] == y[indices[0]])
            {
                return RefNode::Leaf { value: mean };
            }

            let width = x[0].len();
            let mut candidates: Vec<usize> = (0..width).collect();
            if let Some(m) = self.params.features_per_split {
                rng.shuffle(&mut candidates);
                candidates.truncate(m.clamp(1, width));
            }

            let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();
            let total_sse = total_sq - total_sum * total_sum / indices.len() as f64;

            let mut best: Option<(usize, f64, f64)> = None;
            for &feature in &candidates {
                let mut order: Vec<usize> = indices.to_vec();
                order.sort_by(|&a, &b| {
                    x[a][feature]
                        .partial_cmp(&x[b][feature])
                        .expect("NaN feature")
                });
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                    left_sum += y[i];
                    left_sq += y[i] * y[i];
                    let n_left = k + 1;
                    let n_right = order.len() - n_left;
                    if n_left < self.params.min_samples_leaf
                        || n_right < self.params.min_samples_leaf
                    {
                        continue;
                    }
                    if x[i][feature] == x[order[k + 1]][feature] {
                        continue;
                    }
                    let right_sum = total_sum - left_sum;
                    let right_sq = total_sq - left_sq;
                    let sse_left = left_sq - left_sum * left_sum / n_left as f64;
                    let sse_right = right_sq - right_sum * right_sum / n_right as f64;
                    let sse = sse_left + sse_right;
                    if best.is_none_or(|(_, _, b)| sse < b) {
                        let threshold = 0.5 * (x[i][feature] + x[order[k + 1]][feature]);
                        best = Some((feature, threshold, sse));
                    }
                }
            }

            match best {
                Some((feature, threshold, sse)) if sse < total_sse - 1e-12 => {
                    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                        indices.iter().partition(|&&i| x[i][feature] <= threshold);
                    if left_idx.is_empty() || right_idx.is_empty() {
                        return RefNode::Leaf { value: mean };
                    }
                    RefNode::Split {
                        feature,
                        threshold,
                        left: Box::new(self.build(x, y, &left_idx, depth + 1, rng)),
                        right: Box::new(self.build(x, y, &right_idx, depth + 1, rng)),
                    }
                }
                _ => RefNode::Leaf { value: mean },
            }
        }

        pub fn fit_indices(&mut self, x: &[Vec<f64>], y: &[f64], indices: &[usize]) {
            let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
            self.root = Some(self.build(x, y, indices, 0, &mut rng));
        }

        pub fn predict_one(&self, row: &[f64]) -> f64 {
            let mut node = self.root.as_ref().expect("tree not fitted");
            loop {
                match node {
                    RefNode::Leaf { value } => return *value,
                    RefNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        node = if row[*feature] <= *threshold {
                            left
                        } else {
                            right
                        };
                    }
                }
            }
        }
    }
}

const FOREST_TREES: u64 = 30;
const FOREST_MTRY: usize = 2;
const COLLECT_REPEATS: usize = 5;

struct Options {
    jobs: usize,
    iters: usize,
    json: Option<String>,
}

fn parse_args() -> Options {
    let mut jobs = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    let mut iters = 10;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--jobs needs a positive count");
            }
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--iters needs a positive count");
            }
            "--json" => json = Some(it.next().expect("--json needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    Options { jobs, iters, json }
}

/// Mean wall-clock milliseconds of `f` over `iters` runs (after one
/// warm-up run).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / iters as f64
}

fn time_once(f: &mut impl FnMut()) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Mean wall-clock milliseconds of `a` and `b` over `iters` runs each,
/// interleaved with alternating order (after one warm-up run of each).
///
/// Back-to-back `time_ms` calls attribute any drift in machine load —
/// cgroup CPU throttling, thermal clocking, a neighbour waking up —
/// entirely to whichever closure ran second. On millisecond-scale stages
/// that drift rivals the effect being measured; interleaving spreads it
/// evenly across both sides so their ratio stays honest.
fn time_pair_ms(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b();
    let mut a_total = std::time::Duration::ZERO;
    let mut b_total = std::time::Duration::ZERO;
    for i in 0..iters {
        if i % 2 == 0 {
            a_total += time_once(&mut a);
            b_total += time_once(&mut b);
        } else {
            b_total += time_once(&mut b);
            a_total += time_once(&mut a);
        }
    }
    let per_iter = |total: std::time::Duration| total.as_secs_f64() * 1_000.0 / iters as f64;
    (per_iter(a_total), per_iter(b_total))
}

/// The pre-rework collection loop: one fresh simulation per counter
/// group per repeat, nothing shared. Returns the sampled values so the
/// work cannot be optimized away.
fn reference_collect(
    machine: &mut Machine,
    apps: &[&dyn Application],
    events: &[pmca_cpusim::events::EventId],
    repeats: usize,
) -> f64 {
    let groups = schedule(machine.catalog(), events).expect("schedule");
    let mut acc = 0.0;
    for app in apps {
        for _ in 0..repeats {
            for group in &groups {
                let record = machine.run(*app);
                for &id in &group.events {
                    acc += record.count(id);
                }
            }
        }
    }
    acc
}

fn forest_training_set() -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..4000)
        .map(|i| {
            let i = i as f64;
            vec![i, (i * 7.3) % 41.0, (i * i) % 17.0, i.sin() * 10.0]
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| 2.0 * r[0] + 0.5 * r[1] - 0.8 * r[2] + r[3])
        .collect();
    (x, y)
}

/// Fit the reference forest: the shipped seed schedule with the
/// re-sorting tree build, serially.
fn reference_forest_fit(x: &[Vec<f64>], y: &[f64], seed: u64) -> Vec<reference::RefTree> {
    (0..FOREST_TREES)
        .map(|t| {
            let mut rng = Xoshiro256pp::seed_from_u64(split_seed(seed, 2 * t));
            let indices: Vec<usize> = (0..x.len())
                .map(|_| rng.gen_range_usize(0, x.len()))
                .collect();
            let mut tree = reference::RefTree {
                params: reference::RefTreeParams {
                    max_depth: 12,
                    min_samples_leaf: 2,
                    features_per_split: Some(FOREST_MTRY),
                },
                seed: split_seed(seed, 2 * t + 1),
                root: None,
            };
            tree.fit_indices(x, y, &indices);
            tree
        })
        .collect()
}

fn shipped_forest(x: &[Vec<f64>], y: &[f64], seed: u64) -> RandomForest {
    let params = pmca_mlkit::forest::ForestParams {
        n_trees: FOREST_TREES as usize,
        tree: pmca_mlkit::tree::TreeParams {
            features_per_split: Some(FOREST_MTRY),
            ..Default::default()
        },
        sample_fraction: 1.0,
    };
    let mut rf = RandomForest::new(params, seed);
    rf.fit(x, y).expect("forest fit");
    rf
}

struct StageResult {
    name: &'static str,
    before_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        self.before_ms / self.parallel_ms
    }
}

fn main() {
    let options = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut stages = Vec::new();

    // --- collect: unmemoized per-group loop vs memoized batch ----------
    let apps: Vec<Box<dyn Application>> = vec![
        Box::new(Dgemm::new(11_000)),
        Box::new(Fft2d::new(24_000)),
        Box::new(Dgemm::new(8_500)),
    ];
    let refs: Vec<&dyn Application> = apps.iter().map(AsRef::as_ref).collect();
    let events = Machine::new(PlatformSpec::intel_haswell(), 9)
        .catalog()
        .all_ids();
    let groups = schedule(
        Machine::new(PlatformSpec::intel_haswell(), 9).catalog(),
        &events,
    )
    .expect("schedule")
    .len();

    let before_ms = time_ms(options.iters, || {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 9);
        black_box(reference_collect(&mut m, &refs, &events, COLLECT_REPEATS));
    });
    let collect_with = |pool: &ThreadPool| {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 9);
        black_box(
            collect_sweeps_batch(&mut m, &refs, &events, COLLECT_REPEATS, pool).expect("collect"),
        );
    };
    let (serial_ms, parallel_ms) = time_pair_ms(
        options.iters,
        || collect_with(&ThreadPool::new(1)),
        || collect_with(&ThreadPool::new(options.jobs)),
    );

    // Bit-identity gate: the memoized batch must not depend on thread
    // count.
    let fingerprint = |pool: &ThreadPool| -> Vec<u64> {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 9);
        collect_sweeps_batch(&mut m, &refs, &events, COLLECT_REPEATS, pool)
            .expect("collect")
            .iter()
            .flat_map(|sweep| {
                sweep.samples.iter().flat_map(|sample| {
                    sweep
                        .events
                        .iter()
                        .map(|id| sample[id].to_bits())
                        .collect::<Vec<_>>()
                })
            })
            .collect()
    };
    assert_eq!(
        fingerprint(&ThreadPool::new(1)),
        fingerprint(&ThreadPool::new(options.jobs)),
        "collect output changed with thread count"
    );
    stages.push(StageResult {
        name: "collect_sweep",
        before_ms,
        serial_ms,
        parallel_ms,
    });

    // --- forest: re-sorting build vs presorted build -------------------
    let (x, y) = forest_training_set();
    let before_ms = time_ms(options.iters, || {
        black_box(reference_forest_fit(&x, &y, 17));
    });
    let (serial_ms, parallel_ms) = time_pair_ms(
        options.iters,
        || {
            set_global_jobs(1);
            black_box(shipped_forest(&x, &y, 17));
        },
        || {
            set_global_jobs(options.jobs);
            black_box(shipped_forest(&x, &y, 17));
        },
    );
    set_global_jobs(options.jobs);

    // Bit-identity gate: the presorted parallel forest must predict
    // exactly what the re-sorting serial reference predicts.
    let reference_trees = reference_forest_fit(&x, &y, 17);
    let shipped = shipped_forest(&x, &y, 17);
    for row in &x {
        let ref_pred = reference_trees
            .iter()
            .map(|t| t.predict_one(row))
            .sum::<f64>()
            / reference_trees.len() as f64;
        assert_eq!(
            ref_pred.to_bits(),
            shipped.predict_one(row).to_bits(),
            "forest prediction changed"
        );
    }
    stages.push(StageResult {
        name: "forest_fit",
        before_ms,
        serial_ms,
        parallel_ms,
    });

    // --- additivity matrix (no algorithmic before: jobs scaling only) --
    let cases: Vec<CompoundCase> = class_b_compound_pairs(4, 9)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let matrix_events = Machine::new(PlatformSpec::intel_haswell(), 9)
        .catalog()
        .all_ids()
        .into_iter()
        .take(12)
        .collect::<Vec<_>>();
    let checker = AdditivityChecker::default();
    let matrix_with = |pool: &ThreadPool| {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 9);
        black_box(
            AdditivityMatrix::measure_with_pool(&checker, &mut m, &matrix_events, &cases, pool)
                .expect("matrix"),
        );
    };
    let (serial_ms, parallel_ms) = time_pair_ms(
        options.iters,
        || matrix_with(&ThreadPool::new(1)),
        || matrix_with(&ThreadPool::new(options.jobs)),
    );
    stages.push(StageResult {
        name: "additivity_matrix",
        before_ms: serial_ms,
        serial_ms,
        parallel_ms,
    });

    // --- k-fold CV (jobs scaling only) ---------------------------------
    let cv_with = |pool: &ThreadPool| {
        black_box(
            k_fold_with_pool(&x, &y, 10, LinearRegression::paper_constrained, pool).expect("cv"),
        );
    };
    let (serial_ms, parallel_ms) = time_pair_ms(
        options.iters,
        || cv_with(&ThreadPool::new(1)),
        || cv_with(&ThreadPool::new(options.jobs)),
    );
    stages.push(StageResult {
        name: "kfold_cv",
        before_ms: serial_ms,
        serial_ms,
        parallel_ms,
    });

    set_global_jobs(1);

    // --- report --------------------------------------------------------
    println!(
        "offline pipeline benchmark ({cores} core(s), --jobs {jobs}, {groups} counter groups, \
         {iters} iters/stage; outputs verified bit-identical)",
        jobs = options.jobs,
        iters = options.iters,
    );
    println!(
        "{:<20} {:>12} {:>14} {:>16} {:>9}",
        "stage", "before (ms)", "after ×1 (ms)", "after ×jobs (ms)", "speedup"
    );
    for s in &stages {
        println!(
            "{:<20} {:>12.3} {:>14.3} {:>16.3} {:>8.2}x",
            s.name,
            s.before_ms,
            s.serial_ms,
            s.parallel_ms,
            s.speedup()
        );
    }

    if let Some(path) = &options.json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cores\": {cores},\n"));
        out.push_str(&format!("  \"jobs\": {},\n", options.jobs));
        out.push_str(&format!("  \"iters\": {},\n", options.iters));
        out.push_str(&format!("  \"counter_groups\": {groups},\n"));
        out.push_str("  \"outputs_bit_identical\": true,\n");
        out.push_str("  \"stages\": [\n");
        for (i, s) in stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"before_ms\": {:.3}, \"after_serial_ms\": {:.3}, \
                 \"after_parallel_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                s.name,
                s.before_ms,
                s.serial_ms,
                s.parallel_ms,
                s.speedup(),
                if i + 1 < stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write json");
        println!("\nwrote {path}");
    }
}
