//! Regenerate Tables 6 and 7a: the Class B experiment on the simulated
//! Skylake platform. Pass `--quick` (or set `PMCA_QUICK`) for a
//! smoke-scale run.

use pmca_bench::{quick_requested, timed};
use pmca_core::class_b::{run_class_b, ClassBConfig};

fn main() {
    let config = if quick_requested() {
        ClassBConfig::smoke()
    } else {
        ClassBConfig::paper()
    };
    let results = timed(
        "Class B (Skylake): DGEMM/FFT additivity + PA vs PNA models",
        || run_class_b(&config),
    );
    println!(
        "regression dataset: {} train / {} test points\n",
        results.train.len(),
        results.test.len()
    );
    println!("{}", results.table6());
    println!("{}", results.table7a());
    for family in [0, 2, 4] {
        let a = &results.models[family];
        let na = &results.models[family + 1];
        println!(
            "headline: {} {:.2}% vs {} {:.2}% avg error",
            a.model, a.errors.avg, na.model, na.errors.avg
        );
    }
    println!("(paper 7a: LR-A 35.32 vs LR-NA 85.61; RF-A 29.39 vs RF-NA 36.90; NN-A 15.43 vs NN-NA 21.04)");
}
