//! Regenerate Table 7b: the Class C experiment (four-PMC online models)
//! on top of the Class B datasets. Pass `--quick` for a smoke-scale run.

use pmca_bench::{quick_requested, timed};
use pmca_core::class_b::{run_class_b, ClassBConfig};
use pmca_core::class_c::run_class_c;

fn main() {
    let config = if quick_requested() {
        ClassBConfig::smoke()
    } else {
        ClassBConfig::paper()
    };
    let class_b = timed("Class B prerequisite (datasets + correlations)", || {
        run_class_b(&config)
    });
    let results = timed("Class C: PA4/PNA4 selection + models", || {
        run_class_c(&class_b, config.nn_epochs, config.rf_trees, config.seed)
    });
    println!("PA4  = {}", results.pa4.join(", "));
    println!("PNA4 = {}\n", results.pna4.join(", "));
    println!("{}", results.table7b());
    println!(
        "headline: correlation-ranked non-additive PMCs do not rescue the models \
         (paper 7b: LR-NA4 85.61%, RF-NA4 38.06%, NN-NA4 21.32% — no better than the nine-PMC PNA set)"
    );
}
