//! Shared helpers for the SLOPE-PMC-RS reproduction binaries.
//!
//! The `repro_*` binaries in `src/bin/` regenerate every table of the
//! paper's evaluation:
//!
//! | binary          | paper artefact                                  |
//! |-----------------|-------------------------------------------------|
//! | `repro_table1`  | Table 1 — platform specifications               |
//! | `repro_collection` | Sect. 5 — catalog sizes, filtering, runs-to-collect |
//! | `repro_class_a` | Tables 2–5 — Haswell additivity + model ladders |
//! | `repro_class_b` | Tables 6, 7a — Skylake application-specific sets|
//! | `repro_class_c` | Table 7b — four-PMC online models               |
//! | `repro_all`     | everything above, in order                      |
//!
//! Criterion benches in `benches/` cover the simulator, the counter
//! scheduler, the three model trainers, the additivity checker, and the
//! ablation sweeps called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Run a labelled reproduction step, printing a timing footer.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    println!("==> {label}");
    let start = Instant::now();
    let out = f();
    println!(
        "<== {label} done in {:.1}s\n",
        start.elapsed().as_secs_f64()
    );
    out
}

/// True when the caller asked for a quick (smoke-scale) reproduction via
/// `--quick` or the `PMCA_QUICK` environment variable.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("PMCA_QUICK").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_closure_value() {
        assert_eq!(timed("unit", || 41 + 1), 42);
    }

    #[test]
    fn quick_not_requested_by_default() {
        // Cargo test harness arguments don't include --quick.
        std::env::remove_var("PMCA_QUICK");
        assert!(!quick_requested());
    }
}
