//! Criterion benches for the platform simulator: catalog construction,
//! single runs of each workload class, compound runs, and power-meter
//! sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_cpusim::app::CompoundApp;
use pmca_cpusim::catalog::EventCatalog;
use pmca_cpusim::{Machine, MicroArch, PlatformSpec};
use pmca_powermeter::wattsup::WattsUpPro;
use pmca_workloads::{Dgemm, Fft2d, Hpcg};
use std::hint::black_box;

fn bench_catalog_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("catalog");
    g.bench_function("build_haswell_164", |b| {
        b.iter(|| black_box(EventCatalog::for_micro_arch(MicroArch::Haswell)))
    });
    g.bench_function("build_skylake_385", |b| {
        b.iter(|| black_box(EventCatalog::for_micro_arch(MicroArch::Skylake)))
    });
    g.finish();
}

fn bench_machine_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_run");
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 7);
    let dgemm = Dgemm::new(12_000);
    g.bench_function("dgemm_single_run_385_events", |b| {
        b.iter(|| black_box(machine.run(&dgemm)))
    });
    let fft = Fft2d::new(24_000);
    g.bench_function("fft_single_run", |b| {
        b.iter(|| black_box(machine.run(&fft)))
    });
    let compound = CompoundApp::pair(Dgemm::new(9_000), Fft2d::new(23_000));
    g.bench_function("compound_run_with_interference", |b| {
        b.iter(|| black_box(machine.run(&compound)))
    });
    let mut hw = Machine::new(PlatformSpec::intel_haswell(), 7);
    let hpcg = Hpcg::new(1.0);
    g.bench_function("hpcg_single_run_164_events", |b| {
        b.iter(|| black_box(hw.run(&hpcg)))
    });
    g.finish();
}

fn bench_power_meter(c: &mut Criterion) {
    let mut g = c.benchmark_group("power_meter");
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 7);
    let record = machine.run(&Dgemm::new(20_000));
    let mut meter = WattsUpPro::new(32.0, 7);
    g.bench_function("sample_long_run", |b| {
        b.iter(|| black_box(meter.sample_run(&record)))
    });
    g.bench_function("read_single_sample", |b| {
        b.iter(|| black_box(meter.read_watts(100.0)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_catalog_construction,
    bench_machine_run,
    bench_power_meter
);
criterion_main!(benches);
