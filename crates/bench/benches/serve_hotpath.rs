//! Hot-path microbenches for the serving stack (PR 4).
//!
//! Three groups:
//!
//! - `predict` — compiled ([`CompiledModel`]) vs boxed
//!   (`ModelParams::instantiate`) scalar prediction for all three model
//!   families at 3 and 30 features, the widths bracketing the paper's
//!   deployable (Class C, ≤ 4 PMCs) and exhaustive (Class A) settings;
//! - `fixed` — the integer fixed-point tier ([`FixedModel`]) against the
//!   compiled f64 path: scalar prediction, and SoA batch evaluation
//!   (quantise + evaluate) at depth 64 for linear and forest models;
//! - `run_cache` — all-hit lookups against a single-shard cache
//!   (capacity 16 → exactly one stripe) vs a lock-striped cache
//!   (capacity 256 → 16 stripes) under 1, 4, and 8 threads, with the
//!   same 16-key working set resident in both so only lock contention
//!   differs.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_mlkit::{
    CompiledModel, FixedBatch, FixedModel, LinearRegression, ModelParams, NeuralNet, RandomForest,
    Regressor,
};
use pmca_serve::{RunCache, RunKey};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

/// Synthetic nonnegative-slope training data at a given feature width:
/// enough structure for every family to fit, cheap enough to build in
/// bench setup.
fn training_data(width: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..80)
        .map(|i| {
            (0..width)
                .map(|j| ((i * 7 + j * 13) % 97) as f64 + j as f64 * 0.5)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, v)| v * (0.1 + j as f64 * 0.03))
                .sum()
        })
        .collect();
    (x, y)
}

/// Fit one family and return (boxed revived predictor, compiled form,
/// a probe row).
fn fitted(
    family: &str,
    width: usize,
) -> (Box<dyn Regressor + Send + Sync>, CompiledModel, Vec<f64>) {
    let (x, y) = training_data(width);
    let params = match family {
        "lr" => {
            let mut lr = LinearRegression::paper_constrained();
            lr.fit(&x, &y).expect("lr fit");
            ModelParams::from_linear(&lr)
        }
        "rf" => {
            let mut rf = RandomForest::with_seed(9);
            rf.fit(&x, &y).expect("rf fit");
            ModelParams::from_forest(&rf)
        }
        "nn" => {
            let mut nn = NeuralNet::with_seed(4);
            nn.fit(&x, &y).expect("nn fit");
            ModelParams::from_neural(&nn)
        }
        other => panic!("unknown family {other}"),
    };
    let boxed = params.instantiate().expect("instantiate");
    let compiled = CompiledModel::compile(&params).expect("compile");
    (boxed, compiled, x[40].clone())
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict");
    for family in ["lr", "rf", "nn"] {
        for width in [3usize, 30] {
            let (boxed, compiled, row) = fitted(family, width);
            g.bench_function(format!("{family}_boxed_{width}f"), |b| {
                b.iter(|| black_box(boxed.predict_one(black_box(&row))))
            });
            g.bench_function(format!("{family}_compiled_{width}f"), |b| {
                b.iter(|| black_box(compiled.predict_one(black_box(&row))))
            });
        }
    }
    g.finish();
}

/// Fixed-point tier against the compiled f64 path: scalar predictions,
/// then a full SoA batch (quantise every row + evaluate) against the
/// same rows through the compiled scalar loop.
fn bench_fixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed");
    const DEPTH: usize = 64;
    for family in ["lr", "rf"] {
        for width in [3usize, 30] {
            let (x, y) = training_data(width);
            let params = match family {
                "lr" => {
                    let mut lr = LinearRegression::paper_constrained();
                    lr.fit(&x, &y).expect("lr fit");
                    ModelParams::from_linear(&lr)
                }
                _ => {
                    let mut rf = RandomForest::with_seed(9);
                    rf.fit(&x, &y).expect("rf fit");
                    ModelParams::from_forest(&rf)
                }
            };
            let compiled = CompiledModel::compile(&params).expect("compile");
            let fixed = FixedModel::lower(&params, 200.0).expect("lower");
            let row = x[40].clone();
            let rows: Vec<&[f64]> = (0..DEPTH).map(|i| x[i % x.len()].as_slice()).collect();
            g.bench_function(format!("{family}_f64_scalar_{width}f"), |b| {
                b.iter(|| black_box(compiled.predict_one(black_box(&row))))
            });
            g.bench_function(format!("{family}_fixed_scalar_{width}f"), |b| {
                b.iter(|| black_box(fixed.predict_one(black_box(&row))))
            });
            g.bench_function(format!("{family}_f64_batch{DEPTH}_{width}f"), |b| {
                let mut out = Vec::with_capacity(DEPTH);
                b.iter(|| {
                    out.clear();
                    for row in &rows {
                        out.push(compiled.predict_one(black_box(row)));
                    }
                    black_box(out.last().copied())
                })
            });
            g.bench_function(format!("{family}_fixed_batch{DEPTH}_{width}f"), |b| {
                let mut batch = FixedBatch::new();
                let mut out = Vec::with_capacity(DEPTH);
                b.iter(|| {
                    batch.clear();
                    out.clear();
                    for row in &rows {
                        fixed.push_row(&mut batch, black_box(row));
                    }
                    fixed.predict_batch_into(&mut batch, &mut out);
                    black_box(out.last().copied())
                })
            });
        }
    }
    g.finish();
}

/// The shared 16-key working set both cache variants hold resident.
fn working_set() -> Vec<RunKey> {
    let events = Arc::new(vec![
        "UOPS_EXECUTED_CORE".to_string(),
        "L2_RQSTS_MISS".to_string(),
    ]);
    (0..16)
        .map(|i| RunKey {
            app: format!("dgemm:{}", 8_000 + 500 * i),
            platform: "skylake".to_string(),
            seed: 42,
            events: Arc::clone(&events),
        })
        .collect()
}

/// `threads` workers each perform `gets` round-robin lookups over the
/// resident working set; every lookup is a hit, so the measured cost is
/// lock acquisition plus hash-map probe.
fn hammer(cache: &Arc<RunCache>, keys: &Arc<Vec<RunKey>>, threads: usize, gets: usize) -> u64 {
    if threads == 1 {
        let mut found = 0u64;
        for i in 0..gets {
            found += u64::from(cache.get(&keys[i % keys.len()]).is_some());
        }
        return found;
    }
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(cache);
            let keys = Arc::clone(keys);
            thread::spawn(move || {
                let mut found = 0u64;
                for i in 0..gets {
                    found += u64::from(cache.get(&keys[(t + i) % keys.len()]).is_some());
                }
                found
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("worker")).sum()
}

fn bench_run_cache(c: &mut Criterion) {
    let keys = Arc::new(working_set());
    let single = Arc::new(RunCache::new(16));
    let striped = Arc::new(RunCache::new(256));
    for key in keys.iter() {
        single.insert(key.clone(), vec![1.0, 2.0]);
        striped.insert(key.clone(), vec![1.0, 2.0]);
    }
    assert_eq!(single.shards(), 1);
    assert!(striped.shards() > 1);
    let mut g = c.benchmark_group("run_cache");
    g.sample_size(10);
    const GETS: usize = 2_000;
    for threads in [1usize, 4, 8] {
        for (label, cache) in [("single", &single), ("striped", &striped)] {
            g.bench_function(format!("{label}_get_{threads}t"), |b| {
                b.iter(|| black_box(hammer(cache, &keys, threads, GETS)))
            });
        }
    }
    g.finish();
}

criterion_group!(predict_benches, bench_predict);
criterion_group!(fixed_benches, bench_fixed);
criterion_group!(cache_benches, bench_run_cache);
criterion_main!(predict_benches, fixed_benches, cache_benches);
