//! Criterion benches for counter-group scheduling: the full catalogs (the
//! paper's ≈53/≈99-run schedules) and typical online subsets.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_core::class_a::CLASS_A_PMCS;
use pmca_core::class_b::{PA, PNA};
use pmca_cpusim::catalog::EventCatalog;
use pmca_cpusim::MicroArch;
use pmca_pmctools::scheduler::schedule;
use std::hint::black_box;

fn bench_full_catalogs(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_full_catalog");
    for arch in [MicroArch::Haswell, MicroArch::Skylake] {
        let catalog = EventCatalog::for_micro_arch(arch);
        let all = catalog.all_ids();
        g.bench_function(format!("{arch}"), |b| {
            b.iter(|| black_box(schedule(&catalog, &all).expect("schedulable")))
        });
    }
    g.finish();
}

fn bench_experiment_subsets(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_subsets");
    let hw = EventCatalog::for_micro_arch(MicroArch::Haswell);
    let class_a = hw.ids(&CLASS_A_PMCS).expect("class A events");
    g.bench_function("class_a_six_events", |b| {
        b.iter(|| black_box(schedule(&hw, &class_a).expect("schedulable")))
    });
    let sk = EventCatalog::for_micro_arch(MicroArch::Skylake);
    let names: Vec<&str> = PA.iter().chain(PNA.iter()).copied().collect();
    let class_b = sk.ids(&names).expect("class B events");
    g.bench_function("class_b_eighteen_events", |b| {
        b.iter(|| black_box(schedule(&sk, &class_b).expect("schedulable")))
    });
    g.finish();
}

criterion_group!(benches, bench_full_catalogs, bench_experiment_subsets);
criterion_main!(benches);
