//! Criterion benches for the additivity machinery: Eq. 1 itself, the full
//! two-stage checker over a compound suite, and report ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_additivity::checker::{AdditivityChecker, CompoundCase};
use pmca_additivity::AdditivityTest;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_workloads::suite::class_b_compound_pairs;
use pmca_workloads::{Dgemm, Fft2d};
use std::hint::black_box;

fn bench_equation_1(c: &mut Criterion) {
    c.bench_function("equation_1_error", |b| {
        b.iter(|| black_box(AdditivityTest::equation_1_error_pct(40.0, 60.0, 125.0)))
    });
}

fn bench_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("additivity_checker");
    g.sample_size(10);
    g.bench_function("six_events_four_compounds", |b| {
        b.iter(|| {
            let mut machine = Machine::new(PlatformSpec::intel_skylake(), 5);
            let events = machine
                .catalog()
                .ids(&[
                    "UOPS_EXECUTED_CORE",
                    "FP_ARITH_INST_RETIRED_DOUBLE",
                    "MEM_INST_RETIRED_ALL_STORES",
                    "IDQ_MS_UOPS",
                    "ICACHE_64B_IFTAG_MISS",
                    "ARITH_DIVIDER_COUNT",
                ])
                .expect("events exist");
            let cases: Vec<CompoundCase> = class_b_compound_pairs(4, 5)
                .into_iter()
                .map(|(a, b)| CompoundCase::new(a, b))
                .collect();
            black_box(
                AdditivityChecker::default()
                    .check(&mut machine, &events, &cases)
                    .expect("check runs"),
            )
        })
    });
    g.finish();
}

fn bench_report_ranking(c: &mut Criterion) {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 5);
    let events = machine
        .catalog()
        .ids(&["UOPS_EXECUTED_CORE", "IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT"])
        .expect("events exist");
    let cases = vec![CompoundCase::new(
        Box::new(Dgemm::new(8_000)),
        Box::new(Fft2d::new(23_000)),
    )];
    let report = AdditivityChecker::default()
        .check(&mut machine, &events, &cases)
        .expect("check runs");
    c.bench_function("report_ranked", |b| b.iter(|| black_box(report.ranked())));
}

criterion_group!(
    benches,
    bench_equation_1,
    bench_checker,
    bench_report_ranking
);
criterion_main!(benches);
