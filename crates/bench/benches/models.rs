//! Criterion benches for the three model families at Class B training
//! scale (651 points, 9 features).

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_mlkit::forest::ForestParams;
use pmca_mlkit::nn::NnParams;
use pmca_mlkit::tree::TreeParams;
use pmca_mlkit::{LinearRegression, NeuralNet, RandomForest, Regressor};
use std::hint::black_box;

/// A synthetic Class-B-shaped dataset: 651 points, 9 collinear features,
/// two kernel families with different slopes, multiplicative noise.
fn class_b_shaped() -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rows = Vec::with_capacity(651);
    let mut y = Vec::with_capacity(651);
    for i in 0..651 {
        let w = (i + 1) as f64 * 1e9;
        let fam = if i % 5 == 0 { 1.4 } else { 1.0 };
        let noise = 1.0 + 0.2 * ((((i * 2654435761_usize) % 997) as f64 / 498.5) - 1.0);
        let feats: Vec<f64> = (0..9)
            .map(|j| w * (1.0 + 0.07 * j as f64) * if j % 2 == 0 { fam } else { 1.0 })
            .collect();
        rows.push(feats);
        y.push(w * 3e-10 * fam * noise);
    }
    (rows, y)
}

fn bench_linreg(c: &mut Criterion) {
    let (x, y) = class_b_shaped();
    let mut g = c.benchmark_group("linreg");
    g.bench_function("nnls_fit_651x9", |b| {
        b.iter(|| {
            let mut lr = LinearRegression::paper_constrained();
            lr.fit(&x, &y).expect("fit");
            black_box(lr)
        })
    });
    let mut fitted = LinearRegression::paper_constrained();
    fitted.fit(&x, &y).expect("fit");
    g.bench_function("predict_row", |b| {
        b.iter(|| black_box(fitted.predict_one(&x[100])))
    });
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let (x, y) = class_b_shaped();
    let mut g = c.benchmark_group("random_forest");
    g.sample_size(10);
    g.bench_function("fit_100_trees_651x9", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(
                ForestParams {
                    n_trees: 100,
                    tree: TreeParams::default(),
                    sample_fraction: 1.0,
                },
                9,
            );
            rf.fit(&x, &y).expect("fit");
            black_box(rf)
        })
    });
    let mut fitted = RandomForest::with_seed(9);
    fitted.fit(&x, &y).expect("fit");
    g.bench_function("predict_row", |b| {
        b.iter(|| black_box(fitted.predict_one(&x[100])))
    });
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let (x, y) = class_b_shaped();
    let mut g = c.benchmark_group("neural_net");
    g.sample_size(10);
    g.bench_function("fit_100_epochs_651x9", |b| {
        b.iter(|| {
            let mut nn = NeuralNet::new(
                NnParams {
                    epochs: 100,
                    ..NnParams::default()
                },
                9,
            );
            nn.fit(&x, &y).expect("fit");
            black_box(nn)
        })
    });
    let mut fitted = NeuralNet::new(
        NnParams {
            epochs: 50,
            ..NnParams::default()
        },
        9,
    );
    fitted.fit(&x, &y).expect("fit");
    g.bench_function("predict_row", |b| {
        b.iter(|| black_box(fitted.predict_one(&x[100])))
    });
    g.finish();
}

criterion_group!(benches, bench_linreg, bench_forest, bench_nn);
criterion_main!(benches);
