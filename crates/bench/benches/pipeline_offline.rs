//! Criterion benches for the parallel offline pipeline: memoized batch
//! collection, presorted forest training, the additivity matrix, and
//! k-fold cross-validation, each at one thread and at four — the outputs
//! are bit-identical by construction, so the two timings isolate pool
//! overhead and scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_additivity::{AdditivityChecker, AdditivityMatrix, CompoundCase};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{k_fold_with_pool, LinearRegression, RandomForest, Regressor};
use pmca_parallel::{set_global_jobs, ThreadPool};
use pmca_pmctools::collector::collect_sweeps_batch;
use pmca_workloads::suite::class_b_compound_pairs;
use pmca_workloads::{Dgemm, Fft2d};
use std::hint::black_box;

fn training_set() -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let i = f64::from(i);
            vec![i, (i * 7.3) % 41.0, (i * i) % 17.0]
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| 2.0 * r[0] + 0.5 * r[1] - 0.8 * r[2])
        .collect();
    (x, y)
}

fn bench_collect_batch(c: &mut Criterion) {
    let apps: Vec<Box<dyn Application>> =
        vec![Box::new(Dgemm::new(10_000)), Box::new(Fft2d::new(24_000))];
    let refs: Vec<&dyn Application> = apps.iter().map(AsRef::as_ref).collect();
    let events = Machine::new(PlatformSpec::intel_haswell(), 3)
        .catalog()
        .all_ids();
    let mut g = c.benchmark_group("pipeline_collect");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        g.bench_function(format!("batch_sweep_jobs{threads}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(PlatformSpec::intel_haswell(), 3);
                black_box(collect_sweeps_batch(&mut m, &refs, &events, 3, &pool).expect("collect"))
            })
        });
    }
    g.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let (x, y) = training_set();
    let mut g = c.benchmark_group("pipeline_forest");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("fit_jobs{threads}"), |b| {
            set_global_jobs(threads);
            b.iter(|| {
                let mut rf = RandomForest::with_seed(11);
                rf.fit(&x, &y).expect("fit");
                black_box(rf)
            })
        });
    }
    set_global_jobs(1);
    g.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let cases: Vec<CompoundCase> = class_b_compound_pairs(3, 5)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let events = Machine::new(PlatformSpec::intel_haswell(), 5)
        .catalog()
        .all_ids()
        .into_iter()
        .take(8)
        .collect::<Vec<_>>();
    let checker = AdditivityChecker::default();
    let mut g = c.benchmark_group("pipeline_matrix");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        g.bench_function(format!("measure_jobs{threads}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(PlatformSpec::intel_haswell(), 5);
                black_box(
                    AdditivityMatrix::measure_with_pool(&checker, &mut m, &events, &cases, &pool)
                        .expect("matrix"),
                )
            })
        });
    }
    g.finish();
}

fn bench_kfold(c: &mut Criterion) {
    let (x, y) = training_set();
    let mut g = c.benchmark_group("pipeline_kfold");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        g.bench_function(format!("cv_jobs{threads}"), |b| {
            b.iter(|| {
                black_box(
                    k_fold_with_pool(&x, &y, 10, LinearRegression::paper_constrained, &pool)
                        .expect("cv"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_collect_batch,
    bench_forest_fit,
    bench_matrix,
    bench_kfold
);
criterion_main!(benches);
