//! Streaming-ingestion microbenches for the `pmca-stream` hub (PR 6).
//!
//! Measures the hub itself, with the TCP layer peeled off, so the
//! numbers isolate the per-window state-machine cost:
//!
//! - `push_unlabelled` — the pure hot path: ring insert + estimate
//!   refresh against the current model snapshot, no learning;
//! - `push_labelled` — the same plus the O(k²) recursive least-squares
//!   update on the online linear model (refits are pushed far out of
//!   range so no background thread pollutes the measurement);
//! - `poll` — status snapshot of a warm stream, the read the serving
//!   layer performs per `STREAM POLL`;
//! - `open_close` — stream lifecycle churn: shard insert, state
//!   allocation, and teardown.

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_stream::{synthetic_window, StreamHub, StreamHubConfig};
use std::hint::black_box;

fn hub(refit_every: usize) -> StreamHub {
    StreamHub::new(StreamHubConfig::default().refit_every(refit_every))
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_push");
    // Refits far out of reach: the labelled bench measures the RLS
    // update alone, not a background refit racing the timer.
    let hub = hub(usize::MAX);
    hub.open("bench-unlabelled", "dgemm:8000", "haswell", 64)
        .expect("open");
    hub.open("bench-labelled", "dgemm:8000", "haswell", 64)
        .expect("open");
    let mut unlabelled_window = 0u64;
    g.bench_function("push_unlabelled", |b| {
        b.iter(|| {
            let (counts, _) = synthetic_window(1, unlabelled_window);
            unlabelled_window += 1;
            black_box(
                hub.push("bench-unlabelled", unlabelled_window, &counts, None)
                    .expect("push"),
            )
        })
    });
    let mut labelled_window = 0u64;
    g.bench_function("push_labelled", |b| {
        b.iter(|| {
            let (counts, joules) = synthetic_window(2, labelled_window);
            labelled_window += 1;
            black_box(
                hub.push("bench-labelled", labelled_window, &counts, Some(joules))
                    .expect("push"),
            )
        })
    });
    g.finish();
}

fn bench_poll(c: &mut Criterion) {
    let hub = hub(usize::MAX);
    hub.open("bench-poll", "dgemm:8000", "haswell", 64)
        .expect("open");
    for w in 0..64u64 {
        let (counts, joules) = synthetic_window(3, w);
        hub.push("bench-poll", w, &counts, Some(joules))
            .expect("push");
    }
    let mut g = c.benchmark_group("stream_poll");
    g.bench_function("poll_warm", |b| {
        b.iter(|| black_box(hub.poll("bench-poll").expect("poll")))
    });
    g.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let hub = hub(usize::MAX);
    let mut g = c.benchmark_group("stream_lifecycle");
    g.bench_function("open_close", |b| {
        b.iter(|| {
            hub.open("bench-churn", "dgemm:8000", "haswell", 32)
                .expect("open");
            black_box(hub.close("bench-churn").expect("close"))
        })
    });
    g.finish();
}

criterion_group!(push_benches, bench_push);
criterion_group!(poll_benches, bench_poll);
criterion_group!(lifecycle_benches, bench_open_close);
criterion_main!(push_benches, poll_benches, lifecycle_benches);
