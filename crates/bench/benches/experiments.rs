//! Criterion benches for the end-to-end experiment pipelines, one per
//! paper artefact, at smoke scale (the paper-scale runs live in the
//! `repro_*` binaries; these benches track the cost of the machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use pmca_additivity::{AdditivityChecker, AdditivityTest, CompoundCase};
use pmca_core::class_a::{run_class_a, ClassAConfig, CLASS_A_PMCS};
use pmca_core::class_b::{run_class_b, ClassBConfig};
use pmca_core::class_c::run_class_c;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_workloads::suite::class_a_compound_pairs;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_additivity_test");
    g.sample_size(10);
    g.bench_function("six_events_ten_compounds", |b| {
        b.iter(|| {
            let mut machine = Machine::new(PlatformSpec::intel_haswell(), 1);
            let events = machine.catalog().ids(&CLASS_A_PMCS).expect("events");
            let cases: Vec<CompoundCase> = class_a_compound_pairs(10, 1)
                .into_iter()
                .map(|(a, b)| CompoundCase::new(a, b))
                .collect();
            let test = AdditivityTest {
                runs: 2,
                ..AdditivityTest::default()
            };
            black_box(
                AdditivityChecker::new(test)
                    .check(&mut machine, &events, &cases)
                    .expect("check"),
            )
        })
    });
    g.finish();
}

fn bench_tables_3_to_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables3to5_class_a");
    g.sample_size(10);
    g.bench_function("smoke_scale", |b| {
        b.iter(|| black_box(run_class_a(&ClassAConfig::smoke())))
    });
    g.finish();
}

fn bench_tables_6_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables6and7_class_b_c");
    g.sample_size(10);
    g.bench_function("smoke_scale", |b| {
        b.iter(|| {
            let config = ClassBConfig::smoke();
            let class_b = run_class_b(&config);
            let class_c = run_class_c(&class_b, config.nn_epochs, config.rf_trees, config.seed);
            black_box((class_b, class_c))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table2, bench_tables_3_to_5, bench_tables_6_7);
criterion_main!(benches);
