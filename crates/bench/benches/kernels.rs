//! SIMD kernel microbenches (PR 10).
//!
//! One `kernels` group comparing the scalar, SSE2, and AVX2
//! implementations of the two batched inference kernels — fixed-point
//! SoA evaluation ([`FixedModel::predict_batch_into_with`]) and f64
//! batch prediction ([`CompiledModel::predict_batch_into_with`]) — for
//! linear (`lr`) and forest (`rf`) models at 4 and 30 features, batch
//! depths 1 and 64. Unsupported instruction sets are skipped.
//!
//! After the group (in timing *and* `--test` smoke mode) a throughput
//! gate asserts AVX2 evaluates the batch-64 fixed-point linear case at
//! least 2× faster than the scalar kernel, exiting nonzero otherwise —
//! the floor CI enforces so the dispatch layer cannot silently rot.

use criterion::{criterion_group, Criterion};
use pmca_mlkit::{
    CompiledModel, FixedBatch, FixedModel, LinearRegression, ModelParams, RandomForest, Regressor,
};
use pmca_simd::Isa;
use std::hint::black_box;
use std::time::Instant;

/// Synthetic nonnegative-slope training data at a given feature width
/// (the serve_hotpath fixture, shared shape).
fn training_data(width: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..80)
        .map(|i| {
            (0..width)
                .map(|j| ((i * 7 + j * 13) % 97) as f64 + j as f64 * 0.5)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, v)| v * (0.1 + j as f64 * 0.03))
                .sum()
        })
        .collect();
    (x, y)
}

/// Fit one family and return its compiled and fixed-point forms plus
/// the training rows to batch over.
fn fitted(family: &str, width: usize) -> (CompiledModel, FixedModel, Vec<Vec<f64>>) {
    let (x, y) = training_data(width);
    let params = match family {
        "lr" => {
            let mut lr = LinearRegression::paper_constrained();
            lr.fit(&x, &y).expect("lr fit");
            ModelParams::from_linear(&lr)
        }
        _ => {
            let mut rf = RandomForest::with_seed(9);
            rf.fit(&x, &y).expect("rf fit");
            ModelParams::from_forest(&rf)
        }
    };
    let compiled = CompiledModel::compile(&params).expect("compile");
    let fixed = FixedModel::lower(&params, 200.0).expect("lower");
    (compiled, fixed, x)
}

/// The instruction sets this CPU can actually run.
fn supported_isas() -> Vec<Isa> {
    let mut all = vec![Isa::Scalar, Isa::Sse2, Isa::Avx2];
    all.retain(|isa| isa.clamp_supported() == *isa);
    all
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for family in ["lr", "rf"] {
        for width in [4usize, 30] {
            let (compiled, fixed, x) = fitted(family, width);
            for depth in [1usize, 64] {
                let rows: Vec<&[f64]> = (0..depth).map(|i| x[i % x.len()].as_slice()).collect();
                // Pre-quantized SoA batch: the bench times evaluation,
                // the kernel the dispatch layer vectorizes.
                let mut batch = FixedBatch::new();
                batch.push_rows(&fixed, &rows);
                for isa in supported_isas() {
                    let name = isa.as_str();
                    let mut out = Vec::with_capacity(depth);
                    g.bench_function(format!("fixed_{family}_{name}_{width}f_b{depth}"), |b| {
                        b.iter(|| {
                            out.clear();
                            fixed.predict_batch_into_with(black_box(isa), &mut batch, &mut out);
                            black_box(out.last().copied())
                        })
                    });
                    let mut out = Vec::with_capacity(depth);
                    g.bench_function(format!("f64_{family}_{name}_{width}f_b{depth}"), |b| {
                        b.iter(|| {
                            out.clear();
                            compiled.predict_batch_into_with(black_box(isa), &rows, &mut out);
                            black_box(out.last().copied())
                        })
                    });
                }
            }
        }
    }
    g.finish();
}

/// Best-of-N wall time for evaluating the pre-filled batch on `isa`.
fn time_fixed_eval(fixed: &FixedModel, batch: &mut FixedBatch, isa: Isa) -> f64 {
    const ITERS: usize = 2_000;
    let mut out = Vec::with_capacity(64);
    for _ in 0..200 {
        out.clear();
        fixed.predict_batch_into_with(isa, batch, &mut out);
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..ITERS {
            out.clear();
            fixed.predict_batch_into_with(isa, batch, &mut out);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    black_box(out.last().copied());
    best
}

/// The CI throughput floor: AVX2 must evaluate the batch-64 fixed-point
/// linear case at least 2× faster than the scalar kernel.
fn gate() {
    if Isa::Avx2.clamp_supported() != Isa::Avx2 {
        println!("kernels-gate: skipped (no AVX2 on this CPU)");
        return;
    }
    let (_, fixed, x) = fitted("lr", 30);
    let rows: Vec<&[f64]> = (0..64).map(|i| x[i % x.len()].as_slice()).collect();
    let mut batch = FixedBatch::new();
    batch.push_rows(&fixed, &rows);
    let scalar = time_fixed_eval(&fixed, &mut batch, Isa::Scalar);
    let avx2 = time_fixed_eval(&fixed, &mut batch, Isa::Avx2);
    let speedup = scalar / avx2;
    println!("kernels-gate: avx2 vs scalar on fixed lr 30f batch-64: {speedup:.2}x (floor 2.00x)");
    if speedup < 2.0 {
        eprintln!("kernels-gate: FAIL — AVX2 fixed-point throughput below the 2x floor");
        std::process::exit(1);
    }
}

criterion_group!(kernel_benches, bench_kernels);

fn main() {
    kernel_benches();
    gate();
}
