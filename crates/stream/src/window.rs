//! The per-stream sliding-window state machine.
//!
//! A producer pushes windows tagged with a monotonically increasing id.
//! Real telemetry arrives imperfect: retries duplicate windows, UDP-style
//! relays reorder them, and a wedged agent can replay history. The state
//! machine absorbs all of that with one rule: keep the newest `capacity`
//! windows, sorted by id.

use std::collections::VecDeque;

/// One telemetry window: a producer-assigned id, the PMC counts for that
/// interval (in the stream's feature order), and optionally the measured
/// dynamic energy when the producer sits next to a power meter.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Monotonically increasing window id assigned by the producer.
    pub id: u64,
    /// PMC counts for the window, in the stream's feature order.
    pub counts: Vec<f64>,
    /// Measured dynamic energy of the window in joules, when available.
    pub joules: Option<f64>,
}

/// What happened to one pushed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Inserted into the ring. `lag` is how many window ids behind the
    /// stream's high-water mark this one arrived (0 for in-order).
    Accepted {
        /// Window ids between this window and the highest accepted so far.
        lag: u64,
    },
    /// A window with the same id is already retained.
    Duplicate,
    /// Older than everything a full ring retains — dropped.
    TooOld,
}

/// Bounds on a stream's ring capacity: a ring needs at least one slot,
/// and 4096 one-second windows is over an hour of history — more than
/// any sliding estimate needs.
pub const MAX_WINDOW_CAPACITY: usize = 4096;

/// Ground-truth coefficients behind [`synthetic_window`], joules per
/// count for the deployable 4-PMC set.
pub const SYNTH_COEFFICIENTS: [f64; 4] = [4.0e-9, 9.0e-9, 6.0e-9, 1.1e-8];

/// Deterministic synthetic telemetry for the CLI stream driver, the
/// loadgen `--streams` mode, and smoke tests: counts for the deployable
/// 4-PMC set plus the matching "measured" joules from the fixed
/// [`SYNTH_COEFFICIENTS`] ground truth. Utilisation sweeps a 16-window
/// sawtooth offset per stream, so concurrent streams disagree while any
/// `(stream, window)` pair always reproduces the same sample — labelled
/// pushes therefore drive the online model towards the exact ground
/// truth, which tests assert on.
pub fn synthetic_window(stream: u64, window: u64) -> ([f64; 4], f64) {
    let phase = (stream.wrapping_mul(7).wrapping_add(window) % 16) as f64 / 16.0;
    let scale = 0.8 + 0.4 * phase;
    let counts = [2.0e9 * scale, 4.0e8 * scale, 3.0e8 * scale, 1.5e8 * scale];
    let joules = counts
        .iter()
        .zip(SYNTH_COEFFICIENTS.iter())
        .map(|(c, k)| c * k)
        .sum();
    (counts, joules)
}

/// Sliding ring of the most recent windows of one stream, sorted by id.
#[derive(Debug, Clone)]
pub struct WindowState {
    capacity: usize,
    windows: VecDeque<WindowSample>,
    highest: u64,
    accepted: u64,
    duplicates: u64,
    late: u64,
}

impl WindowState {
    /// A ring holding up to `capacity` windows
    /// (clamped to `1..=`[`MAX_WINDOW_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        WindowState {
            capacity: capacity.clamp(1, MAX_WINDOW_CAPACITY),
            windows: VecDeque::new(),
            highest: 0,
            accepted: 0,
            duplicates: 0,
            late: 0,
        }
    }

    /// The (clamped) ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows currently retained.
    pub fn retained(&self) -> usize {
        self.windows.len()
    }

    /// Highest window id ever accepted (0 before the first accept).
    pub fn highest(&self) -> u64 {
        self.highest
    }

    /// Windows accepted over the stream's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Pushes rejected as duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Pushes rejected as older than the full ring.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// The newest retained window.
    pub fn latest(&self) -> Option<&WindowSample> {
        self.windows.back()
    }

    /// Retained windows, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.windows.iter()
    }

    /// Offer one window to the ring.
    ///
    /// Duplicates (an id already retained) and windows older than a full
    /// ring's oldest entry are rejected; everything else is inserted in
    /// id order, evicting the oldest window once the ring is full.
    pub fn push(&mut self, sample: WindowSample) -> PushOutcome {
        if self.windows.iter().any(|w| w.id == sample.id) {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        if self.windows.len() == self.capacity {
            if let Some(front) = self.windows.front() {
                if sample.id < front.id {
                    self.late += 1;
                    return PushOutcome::TooOld;
                }
            }
        }
        let lag = if self.accepted == 0 {
            0
        } else {
            self.highest.saturating_sub(sample.id)
        };
        self.highest = self.highest.max(sample.id);
        let at = self.windows.partition_point(|w| w.id < sample.id);
        self.windows.insert(at, sample);
        if self.windows.len() > self.capacity {
            self.windows.pop_front();
        }
        self.accepted += 1;
        PushOutcome::Accepted { lag }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64) -> WindowSample {
        WindowSample {
            id,
            counts: vec![id as f64],
            joules: None,
        }
    }

    #[test]
    fn in_order_pushes_accept_with_zero_lag() {
        let mut state = WindowState::new(4);
        for id in 1..=6 {
            assert_eq!(state.push(sample(id)), PushOutcome::Accepted { lag: 0 });
        }
        assert_eq!(state.retained(), 4);
        assert_eq!(state.highest(), 6);
        assert_eq!(state.accepted(), 6);
        let ids: Vec<u64> = state.samples().map(|w| w.id).collect();
        assert_eq!(ids, vec![3, 4, 5, 6], "oldest evicted first");
    }

    #[test]
    fn out_of_order_pushes_sort_into_place_and_report_lag() {
        let mut state = WindowState::new(8);
        state.push(sample(1));
        state.push(sample(4));
        assert_eq!(state.push(sample(2)), PushOutcome::Accepted { lag: 2 });
        assert_eq!(state.push(sample(3)), PushOutcome::Accepted { lag: 1 });
        let ids: Vec<u64> = state.samples().map(|w| w.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert_eq!(state.latest().unwrap().id, 4);
    }

    #[test]
    fn duplicates_are_rejected_and_counted() {
        let mut state = WindowState::new(4);
        state.push(sample(7));
        assert_eq!(state.push(sample(7)), PushOutcome::Duplicate);
        assert_eq!(state.duplicates(), 1);
        assert_eq!(state.retained(), 1);
    }

    #[test]
    fn windows_older_than_a_full_ring_are_dropped() {
        let mut state = WindowState::new(3);
        for id in [10, 11, 12] {
            state.push(sample(id));
        }
        assert_eq!(state.push(sample(5)), PushOutcome::TooOld);
        assert_eq!(state.late(), 1);
        // The same old id is accepted while the ring still has room.
        let mut roomy = WindowState::new(8);
        roomy.push(sample(10));
        assert_eq!(roomy.push(sample(5)), PushOutcome::Accepted { lag: 5 });
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(WindowState::new(0).capacity(), 1);
        assert_eq!(WindowState::new(1 << 20).capacity(), MAX_WINDOW_CAPACITY);
    }
}
