//! The stream hub: every open stream, the per-platform online models,
//! and the background refit/swap machinery.
//!
//! Lock layout, in acquisition order:
//!
//! 1. one of `shards` (per-stream state, hashed by stream id) —
//!    held only while mutating one stream's ring;
//! 2. `online` (per-platform RLS model + training buffer) — held for the
//!    O(width²) recursive update of a labelled push;
//! 3. `snapshots` (read-mostly `RwLock`) — what polls read; writes are a
//!    single `Arc` insert.
//!
//! A poll therefore touches one shard mutex and a snapshot read lock and
//! never waits on model fitting: the heavy random-forest / neural-network
//! refits run on a detached background thread against a *copy* of the
//! training buffer, publish through the installed [`SwapFn`] (the serving
//! registry's versioned double-buffer), and are serialised per platform by
//! a compare-and-swap flag — a refit that would overlap a running one is
//! simply skipped until the next trigger.

use crate::window::{PushOutcome, WindowSample, WindowState};
use pmca_additivity::AdditivityTest;
use pmca_mlkit::export::ModelParams;
use pmca_mlkit::model::Regressor;
use pmca_mlkit::{NeuralNet, RandomForest, RecursiveLeastSquares};
use pmca_obs::{trace, Counter, Gauge, HealthRegistry, HealthState, HealthTransition};
use pmca_obs::{Histogram, MetricsRegistry, Tracer};
use pmca_simd::Isa;
use pmca_stats::confidence::t_critical;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Each pushed window covers one second of telemetry by convention, so a
/// predicted joules-per-window divided by this is a power in watts.
pub const WINDOW_SECONDS: f64 = 1.0;

/// The paper's deployable 4-PMC set — the default feature order streams
/// push counts in.
pub const DEFAULT_PMC_SET: [&str; 4] = [
    "UOPS_EXECUTED_CORE",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_DISPATCHED_PORT_PORT_4",
];

/// Stream-level failures, each mapping to one `ERR` protocol reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// OPEN named a stream id that is already open.
    AlreadyOpen(String),
    /// The stream id is not open.
    Unknown(String),
    /// The hub is at its configured stream limit.
    TooManyStreams {
        /// The configured limit.
        limit: usize,
    },
    /// A pushed sample was unusable (wrong width, non-finite values).
    BadSample(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::AlreadyOpen(id) => write!(f, "stream {id:?} is already open"),
            StreamError::Unknown(id) => write!(f, "no open stream {id:?}"),
            StreamError::TooManyStreams { limit } => {
                write!(f, "too many open streams (limit {limit})")
            }
            StreamError::BadSample(detail) => write!(f, "bad sample: {detail}"),
        }
    }
}

impl Error for StreamError {}

/// Callback through which background refits publish models into the
/// serving registry's versioned store:
/// `(platform, family, feature_order, residual_std, training_rows,
/// params)` — the same shape as `Registry::register`.
pub type SwapFn = dyn Fn(&str, &str, Vec<String>, f64, usize, ModelParams) + Send + Sync;

/// Configuration for a [`StreamHub`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHubConfig {
    shards: usize,
    max_streams: usize,
    idle_ttl: Duration,
    refit_every: usize,
    train_buffer: usize,
    pmc_names: Vec<String>,
    refit_on_drift: bool,
}

impl Default for StreamHubConfig {
    /// 16 shards, 65 536 streams, 5-minute idle eviction, a heavy refit
    /// every 256 labelled windows over a 1 024-row training buffer, the
    /// paper's deployable 4-PMC feature order, and a forced refit when
    /// the health plane flags a platform as drifting.
    fn default() -> Self {
        StreamHubConfig {
            shards: 16,
            max_streams: 65_536,
            idle_ttl: Duration::from_secs(300),
            refit_every: 256,
            train_buffer: 1_024,
            pmc_names: DEFAULT_PMC_SET.iter().map(|s| s.to_string()).collect(),
            refit_on_drift: true,
        }
    }
}

impl StreamHubConfig {
    /// Stream-table shards (≥ 1; default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Maximum concurrently open streams (≥ 1; default 65 536).
    pub fn max_streams(mut self, max_streams: usize) -> Self {
        self.max_streams = max_streams.max(1);
        self
    }

    /// Idle TTL after which a stream is evicted (default 5 minutes).
    pub fn idle_ttl(mut self, ttl: Duration) -> Self {
        self.idle_ttl = ttl;
        self
    }

    /// Labelled windows between heavy background refits (≥ 1; default 256).
    pub fn refit_every(mut self, every: usize) -> Self {
        self.refit_every = every.max(1);
        self
    }

    /// Labelled windows retained as the refit training buffer
    /// (≥ 1; default 1 024).
    pub fn train_buffer(mut self, rows: usize) -> Self {
        self.train_buffer = rows.max(1);
        self
    }

    /// Feature order pushed counts follow (default the paper's 4-PMC set).
    pub fn pmc_names(mut self, names: Vec<String>) -> Self {
        assert!(!names.is_empty(), "streams need at least one PMC feature");
        self.pmc_names = names;
        self
    }

    /// Whether a platform entering the drifting health state forces a
    /// detached heavy refit (default true).
    pub fn refit_on_drift(mut self, refit: bool) -> Self {
        self.refit_on_drift = refit;
        self
    }

    /// The configured feature order.
    pub fn feature_order(&self) -> &[String] {
        &self.pmc_names
    }
}

/// The linear model a poll predicts with: an immutable snapshot swapped
/// atomically (one `Arc` store) on every online update.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Model family tag (`"online"` for hub-fitted snapshots).
    pub family: String,
    /// Snapshot version, bumped on every publish for its platform.
    pub version: u64,
    /// Non-negative, zero-intercept coefficients in feature order.
    pub coefficients: Vec<f64>,
    /// Standard deviation of training residuals, joules.
    pub residual_std: f64,
    /// Rows the model has seen.
    pub training_rows: usize,
}

impl ModelSnapshot {
    /// Predicted joules for one window of counts (clamped non-negative,
    /// matching the serving engine) — the same dispatched pairwise dot
    /// the serving kernels use, so stream estimates and served
    /// estimates of the same coefficients agree bit for bit.
    pub fn predict(&self, counts: &[f64]) -> f64 {
        pmca_simd::dot_f64(Isa::active(), counts, &self.coefficients).max(0.0)
    }

    /// Predicted joules for many windows at once, appending one
    /// clamped estimate per window to `out`. Bit-identical to
    /// [`predict`](ModelSnapshot::predict) per window; the batch form
    /// exists so ring-wide estimates hit the SIMD kernel without a
    /// per-window dispatch lookup.
    pub fn predict_windows_into<'a>(
        &self,
        windows: impl Iterator<Item = &'a [f64]>,
        out: &mut Vec<f64>,
    ) {
        let isa = Isa::active();
        out.extend(windows.map(|w| pmca_simd::dot_f64(isa, w, &self.coefficients).max(0.0)));
    }

    /// Half-width of the 95% prediction interval — the same Student-t
    /// construction the serving engine uses: 0 until the model has rows
    /// and a positive residual spread.
    pub fn prediction_half_width(&self) -> f64 {
        if self.residual_std <= 0.0 || self.training_rows == 0 {
            return 0.0;
        }
        let df = self
            .training_rows
            .saturating_sub(self.coefficients.len())
            .max(1);
        t_critical(df, 0.95) * self.residual_std
    }
}

/// Reply to one push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReply {
    /// What happened to the window.
    pub outcome: PushOutcome,
    /// Windows retained after the push.
    pub retained: usize,
    /// The stream's high-water window id after the push.
    pub highest: u64,
}

/// A snapshot of one stream's state and current estimates — the POLL and
/// CLOSE reply, and one row of a LIST.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStatus {
    /// Stream id.
    pub stream: String,
    /// Application tag the stream was opened with.
    pub app: String,
    /// Platform the stream's counts come from.
    pub platform: String,
    /// Ring capacity in windows.
    pub capacity: usize,
    /// Windows currently retained.
    pub retained: usize,
    /// Windows accepted over the stream's lifetime.
    pub accepted: u64,
    /// Pushes rejected as duplicates.
    pub duplicates: u64,
    /// Pushes rejected as too old.
    pub late: u64,
    /// Highest accepted window id.
    pub highest: u64,
    /// Predicted dynamic energy of the newest retained window, joules.
    pub joules: f64,
    /// Mean predicted power over the retained ring, watts.
    pub watts: f64,
    /// Half-width of the 95% prediction interval, joules.
    pub ci95: f64,
    /// Family of the model that produced the estimates (`"none"` before
    /// any model exists for the platform).
    pub family: String,
    /// Snapshot version of that model.
    pub version: u64,
    /// Rows that model was fitted on.
    pub rows: usize,
    /// Milliseconds since the stream last accepted activity.
    pub idle_ms: u64,
}

/// Per-platform online-update state.
struct PlatformOnline {
    rls: RecursiveLeastSquares,
    /// Most recent labelled windows, the heavy refit's training set.
    buffer: VecDeque<(Vec<f64>, f64)>,
    /// Labelled windows since the last heavy refit was triggered.
    since_refit: usize,
    /// Set while a background refit for this platform is in flight.
    refit_running: Arc<AtomicBool>,
}

/// One open stream.
struct StreamEntry {
    app: String,
    platform: String,
    state: WindowState,
    last_push: Instant,
}

/// Hub instruments (`pmca_stream_*`).
#[derive(Clone)]
struct StreamMetrics {
    open_streams: Gauge,
    accepted: Counter,
    duplicates: Counter,
    late: Counter,
    refits: Counter,
    evicted: Counter,
    /// Out-of-order arrival lag. Recorded as `lag` seconds so the
    /// rendered (seconds-valued) quantiles read directly in windows.
    lag: Histogram,
}

thread_local! {
    /// Scratch for the batched ring-wide window estimates in
    /// `status_of` — reused across polls so a warm status costs no
    /// allocation.
    static ESTIMATE_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

impl StreamMetrics {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        // Advertise the dispatched kernel instruction set (shared with
        // the serving engine, which registers the same gauge id).
        registry
            .gauge("pmca_simd_isa", &[("isa", Isa::active().as_str())])
            .set(1.0);
        let windows =
            |result: &str| registry.counter("pmca_stream_windows_total", &[("result", result)]);
        StreamMetrics {
            open_streams: registry.gauge("pmca_stream_open_streams", &[]),
            accepted: windows("accepted"),
            duplicates: windows("duplicate"),
            late: windows("late"),
            refits: registry.counter("pmca_stream_refits_total", &[]),
            evicted: registry.counter("pmca_stream_evicted_total", &[]),
            lag: registry.histogram("pmca_stream_window_lag_windows", &[]),
        }
    }
}

/// The shared registry of open streams. See the module docs for the
/// locking and refit design.
pub struct StreamHub {
    config: StreamHubConfig,
    shards: Vec<Mutex<HashMap<String, StreamEntry>>>,
    online: Mutex<HashMap<String, PlatformOnline>>,
    snapshots: RwLock<HashMap<String, Arc<ModelSnapshot>>>,
    swap: RwLock<Option<Arc<SwapFn>>>,
    tracer: RwLock<Option<Arc<Tracer>>>,
    health: RwLock<Option<Arc<HealthRegistry>>>,
    /// Rolling per-`(platform, app)` counter means, the base side of the
    /// online compound-vs-sum additivity checks.
    additivity_means: Mutex<HashMap<(String, String), CounterMeans>>,
    open_count: AtomicUsize,
    refit_seed: AtomicU64,
    refit_swaps: Arc<AtomicU64>,
    metrics: StreamMetrics,
}

/// Running per-counter means of one `(platform, app)`'s windows.
#[derive(Debug)]
struct CounterMeans {
    sums: Vec<f64>,
    n: u64,
}

impl CounterMeans {
    fn means(&self) -> Vec<f64> {
        #[allow(clippy::cast_precision_loss)] // window counts, far below 2^52
        let n = (self.n.max(1)) as f64;
        self.sums.iter().map(|s| s / n).collect()
    }
}

impl fmt::Debug for StreamHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamHub")
            .field("config", &self.config)
            .field("open_streams", &self.open_streams())
            .field("refit_swaps", &self.refit_swaps())
            .finish_non_exhaustive()
    }
}

impl StreamHub {
    /// A hub recording into the process-global metrics registry.
    pub fn new(config: StreamHubConfig) -> Self {
        Self::with_registry(config, MetricsRegistry::global())
    }

    /// A hub recording into an explicit metrics registry.
    pub fn with_registry(config: StreamHubConfig, metrics: &MetricsRegistry) -> Self {
        let shards = (0..config.shards)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        StreamHub {
            metrics: StreamMetrics::from_registry(metrics),
            shards,
            online: Mutex::new(HashMap::new()),
            snapshots: RwLock::new(HashMap::new()),
            swap: RwLock::new(None),
            tracer: RwLock::new(None),
            health: RwLock::new(None),
            additivity_means: Mutex::new(HashMap::new()),
            open_count: AtomicUsize::new(0),
            refit_seed: AtomicU64::new(1),
            refit_swaps: Arc::new(AtomicU64::new(0)),
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StreamHubConfig {
        &self.config
    }

    /// Install the callback heavy refits publish models through
    /// (typically the serving registry's `register`).
    pub fn set_swap(&self, swap: Arc<SwapFn>) {
        *self.swap.write().expect("swap poisoned") = Some(swap);
    }

    /// Attach a tracer; background refits record `stream.refit` traces
    /// (with the model-fit spans nested inside) into its flight recorder.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.write().expect("tracer poisoned") = Some(tracer);
    }

    /// Attach a health registry: every labelled accepted window feeds
    /// the platform's calibration tracker (predicted ± half-width vs.
    /// the measured label, *before* the online update so the residual
    /// is out of sample), and compound-app windows feed the per-counter
    /// additivity checks. Drift transitions record a `health.drift`
    /// flight-recorder trace and — when the config allows — force a
    /// detached heavy refit.
    pub fn set_health(&self, health: Arc<HealthRegistry>) {
        *self.health.write().expect("health poisoned") = Some(health);
    }

    /// The attached health registry, if any.
    pub fn health(&self) -> Option<Arc<HealthRegistry>> {
        self.health.read().expect("health poisoned").clone()
    }

    /// Seed `platform`'s snapshot from an already-trained linear model,
    /// if the hub has none yet — how the serving layer hands a
    /// registry-trained online model to streams before any labelled
    /// window arrives.
    pub fn seed_snapshot(
        &self,
        platform: &str,
        coefficients: Vec<f64>,
        residual_std: f64,
        training_rows: usize,
    ) {
        let mut snapshots = self.snapshots.write().expect("snapshots poisoned");
        snapshots
            .entry(platform.to_ascii_lowercase())
            .or_insert_with(|| {
                Arc::new(ModelSnapshot {
                    family: "online".to_string(),
                    version: 1,
                    coefficients,
                    residual_std,
                    training_rows,
                })
            });
    }

    /// The current snapshot for `platform`, if any.
    pub fn snapshot(&self, platform: &str) -> Option<Arc<ModelSnapshot>> {
        self.snapshots
            .read()
            .expect("snapshots poisoned")
            .get(&platform.to_ascii_lowercase())
            .cloned()
    }

    /// Streams currently open.
    pub fn open_streams(&self) -> usize {
        self.open_count.load(Ordering::Relaxed)
    }

    /// Completed heavy refit/swap cycles.
    pub fn refit_swaps(&self) -> u64 {
        self.refit_swaps.load(Ordering::Relaxed)
    }

    /// Whether a heavy refit is currently running for `platform`.
    pub fn refit_in_flight(&self, platform: &str) -> bool {
        let online = self.online.lock().expect("online poisoned");
        online
            .get(&platform.to_ascii_lowercase())
            .is_some_and(|entry| entry.refit_running.load(Ordering::Acquire))
    }

    fn shard(&self, id: &str) -> &Mutex<HashMap<String, StreamEntry>> {
        // FNV-1a: stable, cheap, and good enough to spread ids.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Open a stream. `window` is the sliding-ring capacity in windows
    /// (clamped as by [`WindowState::new`]); returns the clamped value.
    ///
    /// Opening first sweeps idle streams, so a hub at its limit recovers
    /// capacity from abandoned producers without an external sweeper.
    ///
    /// # Errors
    ///
    /// [`StreamError::AlreadyOpen`] for an id already open,
    /// [`StreamError::TooManyStreams`] at the configured limit.
    pub fn open(
        &self,
        id: &str,
        app: &str,
        platform: &str,
        window: usize,
    ) -> Result<usize, StreamError> {
        if self.open_count.load(Ordering::Relaxed) >= self.config.max_streams {
            self.evict_idle();
        }
        if self.open_count.load(Ordering::Relaxed) >= self.config.max_streams {
            return Err(StreamError::TooManyStreams {
                limit: self.config.max_streams,
            });
        }
        let state = WindowState::new(window);
        let capacity = state.capacity();
        let mut shard = self.shard(id).lock().expect("shard poisoned");
        if shard.contains_key(id) {
            return Err(StreamError::AlreadyOpen(id.to_string()));
        }
        shard.insert(
            id.to_string(),
            StreamEntry {
                app: app.to_string(),
                platform: platform.to_ascii_lowercase(),
                state,
                last_push: Instant::now(),
            },
        );
        self.open_count.fetch_add(1, Ordering::Relaxed);
        self.metrics.open_streams.add(1.0);
        Ok(capacity)
    }

    /// Push one window into a stream. A labelled window (with measured
    /// `joules`) additionally feeds the platform's online model.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unknown`] for an unopened id,
    /// [`StreamError::BadSample`] for wrong-width or non-finite values.
    pub fn push(
        &self,
        id: &str,
        window_id: u64,
        counts: &[f64],
        joules: Option<f64>,
    ) -> Result<PushReply, StreamError> {
        let width = self.config.pmc_names.len();
        if counts.len() != width {
            return Err(StreamError::BadSample(format!(
                "expected {width} counts, got {}",
                counts.len()
            )));
        }
        if counts.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(StreamError::BadSample(
                "counts must be finite and non-negative".to_string(),
            ));
        }
        if let Some(j) = joules {
            if !j.is_finite() || j < 0.0 {
                return Err(StreamError::BadSample(
                    "joules must be finite and non-negative".to_string(),
                ));
            }
        }
        let (reply, platform, app) = {
            let mut shard = self.shard(id).lock().expect("shard poisoned");
            let entry = shard
                .get_mut(id)
                .ok_or_else(|| StreamError::Unknown(id.to_string()))?;
            entry.last_push = Instant::now();
            let outcome = entry.state.push(WindowSample {
                id: window_id,
                counts: counts.to_vec(),
                joules,
            });
            let reply = PushReply {
                outcome,
                retained: entry.state.retained(),
                highest: entry.state.highest(),
            };
            (reply, entry.platform.clone(), entry.app.clone())
        };
        match reply.outcome {
            PushOutcome::Accepted { lag } => {
                self.metrics.accepted.inc();
                // Seconds-valued histogram, abused on purpose: lag is
                // recorded as `lag` whole seconds so the rendered
                // quantiles read directly as windows.
                self.metrics
                    .lag
                    .record_ns(lag.saturating_mul(1_000_000_000));
                self.note_additivity(&platform, &app, counts);
                if let Some(j) = joules {
                    // Calibration first: the residual against the
                    // *current* snapshot is out of sample only before
                    // the online update folds this window in.
                    self.observe_calibration(&platform, counts, j);
                    self.online_update(&platform, counts, j);
                }
            }
            PushOutcome::Duplicate => self.metrics.duplicates.inc(),
            PushOutcome::TooOld => self.metrics.late.inc(),
        }
        Ok(reply)
    }

    /// Current state and estimates for a stream.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unknown`] for an unopened id.
    pub fn poll(&self, id: &str) -> Result<StreamStatus, StreamError> {
        let shard = self.shard(id).lock().expect("shard poisoned");
        let entry = shard
            .get(id)
            .ok_or_else(|| StreamError::Unknown(id.to_string()))?;
        Ok(self.status_of(id, entry))
    }

    /// Close a stream, returning its final state.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unknown`] for an unopened id.
    pub fn close(&self, id: &str) -> Result<StreamStatus, StreamError> {
        let removed = {
            let mut shard = self.shard(id).lock().expect("shard poisoned");
            shard
                .remove_entry(id)
                .ok_or_else(|| StreamError::Unknown(id.to_string()))?
        };
        self.open_count.fetch_sub(1, Ordering::Relaxed);
        self.metrics.open_streams.add(-1.0);
        Ok(self.status_of(&removed.0, &removed.1))
    }

    /// All open streams, sorted by id.
    pub fn list(&self) -> Vec<StreamStatus> {
        let mut statuses: Vec<StreamStatus> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            statuses.extend(shard.iter().map(|(id, entry)| self.status_of(id, entry)));
        }
        statuses.sort_by(|a, b| a.stream.cmp(&b.stream));
        statuses
    }

    /// Evict streams idle past the configured TTL; returns how many.
    pub fn evict_idle(&self) -> usize {
        self.evict_idle_older_than(self.config.idle_ttl)
    }

    /// Evict streams whose last activity is older than `ttl` — the
    /// sweep behind [`StreamHub::evict_idle`], with the horizon explicit
    /// so tests need not wait out a real TTL.
    pub fn evict_idle_older_than(&self, ttl: Duration) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            let before = shard.len();
            shard.retain(|_, entry| entry.last_push.elapsed() < ttl);
            evicted += before - shard.len();
        }
        if evicted > 0 {
            self.open_count.fetch_sub(evicted, Ordering::Relaxed);
            self.metrics.open_streams.add(-(evicted as f64));
            self.metrics.evicted.add(evicted as u64);
        }
        evicted
    }

    fn status_of(&self, id: &str, entry: &StreamEntry) -> StreamStatus {
        let snapshot = self.snapshot(&entry.platform);
        let (joules, watts, ci95, family, version, rows) = match &snapshot {
            Some(s) => {
                let latest = entry.state.latest().map_or(0.0, |w| s.predict(&w.counts));
                let retained = entry.state.retained();
                let mean = if retained == 0 {
                    0.0
                } else {
                    // Ring-wide estimates go through the batched SIMD
                    // kernel with thread-local scratch; the sum runs
                    // in the same window order as a per-row loop, so
                    // the mean's bits are unchanged.
                    ESTIMATE_SCRATCH.with(|cell| {
                        let buf = &mut *cell.borrow_mut();
                        buf.clear();
                        s.predict_windows_into(
                            entry.state.samples().map(|w| w.counts.as_slice()),
                            buf,
                        );
                        buf.iter().sum::<f64>() / retained as f64
                    })
                };
                (
                    latest,
                    mean / WINDOW_SECONDS,
                    s.prediction_half_width(),
                    s.family.clone(),
                    s.version,
                    s.training_rows,
                )
            }
            None => (0.0, 0.0, 0.0, "none".to_string(), 0, 0),
        };
        StreamStatus {
            stream: id.to_string(),
            app: entry.app.clone(),
            platform: entry.platform.clone(),
            capacity: entry.state.capacity(),
            retained: entry.state.retained(),
            accepted: entry.state.accepted(),
            duplicates: entry.state.duplicates(),
            late: entry.state.late(),
            highest: entry.state.highest(),
            joules,
            watts,
            ci95,
            family,
            version,
            rows,
            idle_ms: u64::try_from(entry.last_push.elapsed().as_millis()).unwrap_or(u64::MAX),
        }
    }

    /// Feed one labelled window's out-of-sample residual into the
    /// attached health registry, and react to any drift transition.
    fn observe_calibration(&self, platform: &str, counts: &[f64], joules: f64) {
        let Some(health) = self.health() else { return };
        if !health.is_enabled() {
            return;
        }
        let Some(snapshot) = self.snapshot(platform) else {
            return;
        };
        let transition = health.observe(
            platform,
            snapshot.version,
            snapshot.predict(counts),
            snapshot.prediction_half_width(),
            joules,
        );
        if let Some(transition) = transition {
            self.note_drift(&transition);
        }
    }

    /// A drift transition is worth a flight-recorder entry, and entering
    /// the drifting state can force the detached refit path.
    fn note_drift(&self, transition: &HealthTransition) {
        if let Some(tracer) = self.tracer.read().expect("tracer poisoned").clone() {
            if let Some(trace) = tracer.start(
                "health.drift",
                &[
                    ("platform", transition.platform.as_str()),
                    ("from", transition.from.as_str()),
                    ("to", transition.to.as_str()),
                    ("score", &format!("{:.3}", transition.score)),
                    ("version", &transition.version.to_string()),
                ],
            ) {
                tracer.finish(&trace);
            }
        }
        if self.config.refit_on_drift && transition.to == HealthState::Drifting {
            self.force_refit(&transition.platform);
        }
    }

    /// Trigger the detached heavy refit immediately (drift response),
    /// subject to the same buffer floor and one-in-flight CAS as the
    /// periodic trigger.
    fn force_refit(&self, platform: &str) {
        let width = self.config.pmc_names.len();
        let mut refit: Option<RefitJob> = None;
        {
            let mut online = self.online.lock().expect("online poisoned");
            if let Some(entry) = online.get_mut(platform) {
                if entry.buffer.len() >= width.max(8)
                    && entry
                        .refit_running
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    entry.since_refit = 0;
                    refit = Some(RefitJob {
                        platform: platform.to_string(),
                        x: entry.buffer.iter().map(|(row, _)| row.clone()).collect(),
                        y: entry.buffer.iter().map(|(_, target)| *target).collect(),
                        coefficients: entry.rls.coefficients().to_vec(),
                        residual_std: entry.rls.residual_std(),
                        rows: entry.rls.rows(),
                        running: Arc::clone(&entry.refit_running),
                    });
                }
            }
        }
        if let Some(job) = refit {
            self.spawn_refit(job);
        }
    }

    /// Fold one accepted window into the additivity monitor: a base app
    /// (no `;`) contributes to its rolling counter means; a two-part
    /// compound (`a;b`) is checked against the sum of its parts' means
    /// with the paper's equation-1 error, per counter.
    fn note_additivity(&self, platform: &str, app: &str, counts: &[f64]) {
        let Some(health) = self.health() else { return };
        if !health.is_enabled() {
            return;
        }
        let parts: Vec<&str> = app.split(';').filter(|part| !part.is_empty()).collect();
        let (base1, base2) = {
            let mut means = self.additivity_means.lock().expect("additivity poisoned");
            match parts.as_slice() {
                [_single] => {
                    let entry = means
                        .entry((platform.to_string(), app.to_string()))
                        .or_insert_with(|| CounterMeans {
                            sums: vec![0.0; counts.len()],
                            n: 0,
                        });
                    for (sum, count) in entry.sums.iter_mut().zip(counts) {
                        *sum += count;
                    }
                    entry.n += 1;
                    return;
                }
                [a, b] => {
                    let base1 = means.get(&(platform.to_string(), (*a).to_string()));
                    let base2 = means.get(&(platform.to_string(), (*b).to_string()));
                    match (base1, base2) {
                        // Both bases must have been seen, or the check
                        // would compare against nothing.
                        (Some(b1), Some(b2)) if b1.n > 0 && b2.n > 0 => (b1.means(), b2.means()),
                        _ => return,
                    }
                }
                _ => return,
            }
        };
        let tolerance = AdditivityTest::default().tolerance_pct;
        for ((name, (b1, b2)), compound) in self
            .config
            .pmc_names
            .iter()
            .zip(base1.iter().zip(&base2))
            .zip(counts)
        {
            let error_pct = AdditivityTest::equation_1_error_pct(*b1, *b2, *compound);
            health.observe_additivity(platform, name, error_pct, tolerance);
        }
    }

    /// Fold one labelled window into the platform's online model: an
    /// O(width²) recursive-least-squares update, an immediate snapshot
    /// publish, and — every `refit_every` labelled windows — a detached
    /// heavy refit of the forest and neural families.
    fn online_update(&self, platform: &str, counts: &[f64], joules: f64) {
        let width = self.config.pmc_names.len();
        let mut refit: Option<RefitJob> = None;
        {
            let mut online = self.online.lock().expect("online poisoned");
            let entry = online
                .entry(platform.to_string())
                .or_insert_with(|| PlatformOnline {
                    rls: RecursiveLeastSquares::paper_constrained(width),
                    buffer: VecDeque::new(),
                    since_refit: 0,
                    refit_running: Arc::new(AtomicBool::new(false)),
                });
            entry.rls.observe(counts, joules);
            // Rows > 0 after observe, so the refit cannot fail.
            let _ = entry.rls.refit();
            if entry.buffer.len() == self.config.train_buffer {
                entry.buffer.pop_front();
            }
            entry.buffer.push_back((counts.to_vec(), joules));
            entry.since_refit += 1;
            self.publish_snapshot(
                platform,
                entry.rls.coefficients().to_vec(),
                entry.rls.residual_std(),
                entry.rls.rows(),
            );
            // A forest/NN needs a handful of rows to be worth fitting;
            // the CAS keeps at most one refit per platform in flight —
            // an overlapping trigger is dropped, never queued.
            if entry.since_refit >= self.config.refit_every
                && entry.buffer.len() >= width.max(8)
                && entry
                    .refit_running
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                entry.since_refit = 0;
                refit = Some(RefitJob {
                    platform: platform.to_string(),
                    x: entry.buffer.iter().map(|(row, _)| row.clone()).collect(),
                    y: entry.buffer.iter().map(|(_, target)| *target).collect(),
                    coefficients: entry.rls.coefficients().to_vec(),
                    residual_std: entry.rls.residual_std(),
                    rows: entry.rls.rows(),
                    running: Arc::clone(&entry.refit_running),
                });
            }
        }
        if let Some(job) = refit {
            self.spawn_refit(job);
        }
    }

    fn publish_snapshot(
        &self,
        platform: &str,
        coefficients: Vec<f64>,
        residual_std: f64,
        training_rows: usize,
    ) {
        let mut snapshots = self.snapshots.write().expect("snapshots poisoned");
        let version = snapshots.get(platform).map_or(1, |s| s.version + 1);
        snapshots.insert(
            platform.to_string(),
            Arc::new(ModelSnapshot {
                family: "online".to_string(),
                version,
                coefficients,
                residual_std,
                training_rows,
            }),
        );
    }

    /// Run one heavy refit off the hot path: fit forest and neural models
    /// on the buffered labelled windows, publish all three families
    /// through the swap callback, and release the per-platform flag.
    fn spawn_refit(&self, job: RefitJob) {
        let swap = self.swap.read().expect("swap poisoned").clone();
        let tracer = self.tracer.read().expect("tracer poisoned").clone();
        let pmc_names = self.config.pmc_names.clone();
        let swaps = Arc::clone(&self.refit_swaps);
        let refits = self.metrics.refits.clone();
        // Distinct, deterministic seed per refit.
        let seed = self
            .refit_seed
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let running = Arc::clone(&job.running);
        let spawned = thread::Builder::new()
            .name("pmca-stream-refit".to_string())
            .spawn(move || {
                let trace = tracer.as_deref().and_then(|t| {
                    t.start(
                        "stream.refit",
                        &[
                            ("platform", &job.platform),
                            ("rows", &job.x.len().to_string()),
                        ],
                    )
                });
                {
                    let _scope = trace::scope(trace.as_ref());
                    if let Some(swap) = &swap {
                        let mut forest = RandomForest::with_seed(seed);
                        if forest.fit(&job.x, &job.y).is_ok() {
                            swap(
                                &job.platform,
                                "forest",
                                pmc_names.clone(),
                                residual_std_of(&forest, &job.x, &job.y),
                                job.x.len(),
                                ModelParams::from_forest(&forest),
                            );
                        }
                        let mut neural = NeuralNet::with_seed(seed);
                        if neural.fit(&job.x, &job.y).is_ok() {
                            swap(
                                &job.platform,
                                "neural",
                                pmc_names.clone(),
                                residual_std_of(&neural, &job.x, &job.y),
                                job.x.len(),
                                ModelParams::from_neural(&neural),
                            );
                        }
                        swap(
                            &job.platform,
                            "online",
                            pmc_names,
                            job.residual_std,
                            job.rows,
                            ModelParams::Linear {
                                coefficients: job.coefficients,
                                intercept: 0.0,
                            },
                        );
                    }
                    swaps.fetch_add(1, Ordering::Relaxed);
                    refits.inc();
                }
                if let (Some(tracer), Some(trace)) = (tracer.as_deref(), trace.as_ref()) {
                    tracer.finish(trace);
                }
                job.running.store(false, Ordering::Release);
            });
        if spawned.is_err() {
            running.store(false, Ordering::Release);
        }
    }
}

impl Drop for StreamHub {
    /// Give back the hub's share of the `pmca_stream_open_streams`
    /// gauge. In a sharded deployment every hub records into the one
    /// shared registry, so a shard replaced (failover) while holding
    /// open streams would otherwise inflate the gauge forever.
    fn drop(&mut self) {
        let open = self.open_count.load(Ordering::Relaxed);
        if open > 0 {
            #[allow(clippy::cast_precision_loss)] // gauge display
            self.metrics.open_streams.add(-(open as f64));
        }
    }
}

/// Everything a detached refit thread needs, copied out under the
/// `online` lock.
struct RefitJob {
    platform: String,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    coefficients: Vec<f64>,
    residual_std: f64,
    rows: usize,
    running: Arc<AtomicBool>,
}

/// Biased in-sample residual standard deviation, matching how the online
/// training path reports `residual_std`.
fn residual_std_of<R: Regressor>(model: &R, x: &[Vec<f64>], y: &[f64]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let rss: f64 = x
        .iter()
        .zip(y)
        .map(|(row, &target)| {
            let e = model.predict_one(row) - target;
            e * e
        })
        .sum();
    (rss / y.len() as f64).sqrt().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_obs::HealthConfig;
    use std::sync::mpsc;

    fn quiet_hub(config: StreamHubConfig) -> StreamHub {
        StreamHub::with_registry(config, &MetricsRegistry::new())
    }

    fn counts(scale: f64) -> Vec<f64> {
        vec![4.0 * scale, 3.0 * scale, 2.0 * scale, 1.0 * scale]
    }

    #[test]
    fn open_push_poll_close_lifecycle() {
        let hub = quiet_hub(StreamHubConfig::default());
        hub.seed_snapshot("skylake", vec![2.0, 0.0, 0.0, 0.0], 0.5, 20);
        assert_eq!(hub.open("s1", "dgemm:9000", "SKYLAKE", 8).unwrap(), 8);
        assert_eq!(hub.open_streams(), 1);
        for id in 1..=3 {
            let reply = hub.push("s1", id, &counts(id as f64), None).unwrap();
            assert_eq!(reply.outcome, PushOutcome::Accepted { lag: 0 });
        }
        let status = hub.poll("s1").unwrap();
        assert_eq!(status.platform, "skylake", "platform normalised");
        assert_eq!(status.retained, 3);
        assert_eq!(status.highest, 3);
        // Latest window: counts(3) · [2,0,0,0] = 24.
        assert!((status.joules - 24.0).abs() < 1e-12);
        // Mean over [8, 16, 24] at 1 s windows.
        assert!((status.watts - 16.0).abs() < 1e-12);
        assert!(status.ci95 > 0.0, "seeded model carries an interval");
        assert_eq!(status.family, "online");
        let closed = hub.close("s1").unwrap();
        assert_eq!(closed.accepted, 3);
        assert_eq!(hub.open_streams(), 0);
        assert_eq!(hub.poll("s1"), Err(StreamError::Unknown("s1".to_string())));
    }

    #[test]
    fn labelled_pushes_refresh_the_snapshot() {
        let hub = quiet_hub(StreamHubConfig::default());
        hub.open("s1", "app", "skylake", 16).unwrap();
        assert!(hub.snapshot("skylake").is_none());
        // y = 2·c0: ten labelled windows pin the coefficients.
        for id in 1..=10 {
            let c = counts(id as f64);
            let joules = 2.0 * c[0];
            hub.push("s1", id, &c, Some(joules)).unwrap();
        }
        let snapshot = hub.snapshot("skylake").expect("labelled pushes publish");
        assert_eq!(snapshot.training_rows, 10);
        assert_eq!(snapshot.version, 10, "one publish per labelled window");
        let status = hub.poll("s1").unwrap();
        let c = counts(10.0);
        // The paper-constrained ridge (l2 = 0.01) shrinks coefficients a
        // touch, so compare within 1%.
        assert!(
            (status.joules - 2.0 * c[0]).abs() < 0.01 * 2.0 * c[0],
            "poll predicts with the refreshed model: {}",
            status.joules
        );
    }

    #[test]
    fn bad_samples_are_rejected_before_any_state_changes() {
        let hub = quiet_hub(StreamHubConfig::default());
        hub.open("s1", "app", "skylake", 4).unwrap();
        assert!(matches!(
            hub.push("s1", 1, &[1.0, 2.0], None),
            Err(StreamError::BadSample(_))
        ));
        assert!(matches!(
            hub.push("s1", 1, &[1.0, 2.0, 3.0, f64::NAN], None),
            Err(StreamError::BadSample(_))
        ));
        assert!(matches!(
            hub.push("s1", 1, &counts(1.0), Some(-1.0)),
            Err(StreamError::BadSample(_))
        ));
        assert_eq!(hub.poll("s1").unwrap().accepted, 0);
    }

    #[test]
    fn duplicate_open_and_stream_limit_are_errors() {
        let hub = quiet_hub(StreamHubConfig::default().max_streams(2));
        hub.open("a", "app", "skylake", 4).unwrap();
        assert_eq!(
            hub.open("a", "app", "skylake", 4),
            Err(StreamError::AlreadyOpen("a".to_string()))
        );
        hub.open("b", "app", "skylake", 4).unwrap();
        assert_eq!(
            hub.open("c", "app", "skylake", 4),
            Err(StreamError::TooManyStreams { limit: 2 })
        );
    }

    #[test]
    fn idle_eviction_frees_stream_slots() {
        let hub = quiet_hub(StreamHubConfig::default());
        hub.open("a", "app", "skylake", 4).unwrap();
        hub.open("b", "app", "skylake", 4).unwrap();
        assert_eq!(hub.evict_idle_older_than(Duration::from_secs(60)), 0);
        assert_eq!(hub.evict_idle_older_than(Duration::ZERO), 2);
        assert_eq!(hub.open_streams(), 0);
    }

    #[test]
    fn heavy_refit_swaps_all_three_families_off_the_hot_path() {
        let hub = quiet_hub(StreamHubConfig::default().refit_every(8).train_buffer(64));
        let (tx, rx) = mpsc::channel::<(String, String, usize)>();
        let tx = Mutex::new(tx);
        hub.set_swap(Arc::new(
            move |platform: &str,
                  family: &str,
                  _order: Vec<String>,
                  _rstd: f64,
                  rows: usize,
                  _params: ModelParams| {
                let _ = tx
                    .lock()
                    .unwrap()
                    .send((platform.to_string(), family.to_string(), rows));
            },
        ));
        hub.open("s1", "app", "skylake", 16).unwrap();
        for id in 1..=8u64 {
            let c = counts(id as f64);
            let joules = 2.0 * c[0] + 0.5 * c[1];
            hub.push("s1", id, &c, Some(joules)).unwrap();
        }
        let mut families = Vec::new();
        for _ in 0..3 {
            let (platform, family, rows) = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("refit publishes");
            assert_eq!(platform, "skylake");
            assert_eq!(rows, 8);
            families.push(family);
        }
        families.sort();
        assert_eq!(families, ["forest", "neural", "online"]);
        // Wait for the flag release, then the swap counter is visible.
        for _ in 0..500 {
            if !hub.refit_in_flight("skylake") {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(hub.refit_swaps(), 1);
        // Pushes kept working throughout (never blocked on the refit).
        hub.push("s1", 9, &counts(9.0), None).unwrap();
        assert_eq!(hub.poll("s1").unwrap().accepted, 9);
    }

    #[test]
    fn polls_without_a_model_report_family_none() {
        let hub = quiet_hub(StreamHubConfig::default());
        hub.open("s1", "app", "haswell", 4).unwrap();
        hub.push("s1", 1, &counts(1.0), None).unwrap();
        let status = hub.poll("s1").unwrap();
        assert_eq!(status.family, "none");
        assert_eq!(status.joules, 0.0);
        assert_eq!(status.ci95, 0.0);
    }

    #[test]
    fn list_reports_every_open_stream_sorted() {
        let hub = quiet_hub(StreamHubConfig::default());
        for id in ["z", "a", "m"] {
            hub.open(id, "app", "skylake", 4).unwrap();
        }
        let ids: Vec<String> = hub.list().into_iter().map(|s| s.stream).collect();
        assert_eq!(ids, ["a", "m", "z"]);
    }

    #[test]
    fn labelled_pushes_feed_the_calibration_tracker_out_of_sample() {
        let hub = quiet_hub(StreamHubConfig::default());
        let health = Arc::new(HealthRegistry::new(HealthConfig::default()));
        hub.set_health(Arc::clone(&health));
        hub.seed_snapshot("skylake", vec![2.0, 0.0, 0.0, 0.0], 0.5, 20);
        hub.open("s1", "app", "skylake", 16).unwrap();
        for id in 1..=6u64 {
            let c = counts(id as f64);
            // Exactly what the current snapshot predicts: every residual
            // is zero and every interval covers.
            let joules = 2.0 * c[0];
            hub.push("s1", id, &c, Some(joules)).unwrap();
        }
        let cal = health.calibration();
        assert_eq!(cal.len(), 1);
        let c = &cal[0];
        assert_eq!(c.platform, "skylake");
        assert_eq!(c.samples, 6);
        // Each labelled push re-publishes a ridge fit, which shrinks the
        // coefficients a touch — residuals stay small but not zero.
        assert!(c.mae < 0.5, "residuals vs the pre-update snapshot: {c:?}");
        assert!(c.mpe.abs() < 2.0);
        assert_eq!(c.coverage, 1.0);
        assert_eq!(c.state, HealthState::Ok);
        // The tracker reports the *latest* snapshot version it scored
        // against; labelled pushes bump it each time.
        assert!(c.version >= 1);
    }

    #[test]
    fn compound_windows_drive_the_additivity_monitor() {
        let hub = quiet_hub(StreamHubConfig::default());
        let health = Arc::new(HealthRegistry::new(HealthConfig::default()));
        hub.set_health(Arc::clone(&health));
        hub.open("a", "dgemm", "skylake", 8).unwrap();
        hub.open("b", "stream", "skylake", 8).unwrap();
        hub.open("c", "dgemm;stream", "skylake", 8).unwrap();
        // Base means: dgemm = counts(1), stream = counts(2).
        hub.push("a", 1, &counts(1.0), None).unwrap();
        hub.push("b", 1, &counts(2.0), None).unwrap();
        // A compound window equal to the sum of the bases is perfectly
        // additive; one at half the sum violates equation 1 everywhere.
        hub.push("c", 1, &counts(3.0), None).unwrap();
        hub.push("c", 2, &counts(1.5), None).unwrap();
        let rows = health.additivity();
        assert_eq!(rows.len(), 4, "one row per configured counter");
        for row in &rows {
            assert_eq!(row.platform, "skylake");
            assert_eq!(row.checks, 2);
            assert_eq!(row.violations, 1, "{row:?}");
            assert!((row.rate - 0.5).abs() < 1e-12);
            assert!((row.worst_error_pct - 50.0).abs() < 1e-9);
        }
        // Base windows never count as checks.
        hub.push("a", 2, &counts(1.0), None).unwrap();
        assert_eq!(health.additivity()[0].checks, 2);
    }

    #[test]
    fn drift_into_drifting_forces_a_detached_refit() {
        let hub = quiet_hub(
            StreamHubConfig::default()
                .refit_every(100_000)
                .train_buffer(64),
        );
        let health = Arc::new(HealthRegistry::new(HealthConfig {
            min_samples: 1,
            degraded_threshold: 0.2,
            // A −60% residual scores ~0.58/step: one regime-B window
            // lands in Degraded, the next crosses into Drifting.
            drifting_threshold: 0.9,
            ..HealthConfig::default()
        }));
        hub.set_health(Arc::clone(&health));
        let (tx, rx) = mpsc::channel::<String>();
        let tx = Mutex::new(tx);
        hub.set_swap(Arc::new(
            move |_platform: &str,
                  family: &str,
                  _order: Vec<String>,
                  _rstd: f64,
                  _rows: usize,
                  _params: ModelParams| {
                let _ = tx.lock().unwrap().send(family.to_string());
            },
        ));
        hub.open("s1", "app", "skylake", 64).unwrap();
        // Regime A: the online model converges on y = 2·c0 and the
        // buffer passes the refit floor.
        for id in 1..=12u64 {
            let c = counts(id as f64);
            hub.push("s1", id, &c, Some(2.0 * c[0])).unwrap();
        }
        assert_eq!(health.transitions(), 0, "converged model stays Ok");
        // Regime B: the world shifts to y = 5·c0; out-of-sample residuals
        // against the stale snapshot rack up drift score fast.
        for id in 13..=20u64 {
            let c = counts(id as f64);
            hub.push("s1", id, &c, Some(5.0 * c[0])).unwrap();
        }
        assert!(
            health.transitions() >= 2,
            "Ok→Degraded→Drifting walked: {}",
            health.transitions()
        );
        let mut families = Vec::new();
        for _ in 0..3 {
            families.push(
                rx.recv_timeout(Duration::from_secs(60))
                    .expect("drift forces the detached refit"),
            );
        }
        families.sort();
        assert_eq!(families, ["forest", "neural", "online"]);
    }

    #[test]
    fn a_disabled_health_registry_is_inert() {
        let hub = quiet_hub(StreamHubConfig::default());
        let health = Arc::new(HealthRegistry::disabled());
        hub.set_health(Arc::clone(&health));
        hub.open("a", "dgemm", "skylake", 8).unwrap();
        hub.open("c", "dgemm;dgemm", "skylake", 8).unwrap();
        for id in 1..=4u64 {
            let c = counts(id as f64);
            hub.push("a", id, &c, Some(2.0 * c[0])).unwrap();
            hub.push("c", id, &c, None).unwrap();
        }
        assert!(health.calibration().is_empty());
        assert!(health.additivity().is_empty());
    }

    #[test]
    fn dropping_a_hub_returns_its_open_streams_gauge_share() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("pmca_stream_open_streams", &[]);
        let survivor = StreamHub::with_registry(StreamHubConfig::default(), &registry);
        survivor.open("keep", "app", "skylake", 4).unwrap();
        {
            let replaced = StreamHub::with_registry(StreamHubConfig::default(), &registry);
            replaced.open("x", "app", "skylake", 4).unwrap();
            replaced.open("y", "app", "skylake", 4).unwrap();
            assert_eq!(gauge.get(), 3.0);
        }
        // The replaced shard's hub gave back exactly its own share.
        assert_eq!(gauge.get(), 1.0);
    }
}
