//! Streaming telemetry ingestion with online model updates.
//!
//! A fleet node that deployed one of the paper's single-run online models
//! does not stop producing data after deployment: its monitoring agent
//! keeps emitting windowed PMC counts, and nodes that sit next to a power
//! meter also emit the measured dynamic energy of each window. This crate
//! is the ingestion side of that loop:
//!
//! * [`WindowState`] — the per-stream sliding-window state machine. Each
//!   pushed window carries a producer-assigned id; the state machine keeps
//!   the most recent `capacity` windows sorted by id, absorbing
//!   out-of-order arrivals, rejecting duplicates, and dropping windows
//!   older than everything the full ring retains.
//! * [`StreamHub`] — the shared registry of open streams the TCP server
//!   talks to. Streams are sharded across mutexes so pushes on different
//!   streams do not contend; estimates are served from an immutable
//!   [`ModelSnapshot`] behind an `RwLock`, so a poll never waits on a
//!   model refit.
//! * The online-update layer: every *labelled* window (one that carries
//!   measured joules) feeds a [`pmca_mlkit::RecursiveLeastSquares`] model
//!   whose refreshed coefficients are published as a new snapshot
//!   immediately, while every `refit_every` labelled windows a background
//!   thread refits the heavier random-forest and neural-network families
//!   on the retained training buffer and swaps them into the serving
//!   registry through an installed callback — the hot path never blocks
//!   on those fits.
//!
//! Windows are one-second telemetry intervals by convention, so a
//! predicted joules-per-window is numerically a power in watts; the hub's
//! [`StreamStatus`] reports both, plus a 95% prediction half-width from
//! the same Student-t interval the serving engine uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hub;
pub mod window;

pub use hub::{
    ModelSnapshot, PushReply, StreamError, StreamHub, StreamHubConfig, StreamStatus, SwapFn,
};
pub use window::{synthetic_window, PushOutcome, WindowSample, WindowState, SYNTH_COEFFICIENTS};
