//! Time-division multiplexed collection (the `perf` approach).
//!
//! Instead of one run per counter group, the kernel can rotate groups
//! onto the PMU *within* a single run and extrapolate each count by the
//! inverse of its duty fraction: `estimate = raw / duty`. One run instead
//! of ~53 — but the extrapolation silently assumes the event's rate is
//! stationary over the run, which phase-structured applications violate.
//! This module models that trade-off: collection is cheap, but every
//! count picks up an extrapolation error that grows with the number of
//! groups sharing the PMU and with the workload's phase contrast.
//!
//! The paper's methodology (grouped collection, one group per run) is the
//! accurate-but-expensive alternative; the Class C experiments exist
//! precisely because practitioners want *online* models that avoid both
//! costs by using ≤ 4 counters.

use crate::collector::PmcVector;
use crate::scheduler::{schedule, ScheduleError};
use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_stats::rng::{Rng, Xoshiro256pp};
use std::collections::HashMap;

/// Configuration of the multiplexing collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplexer {
    /// Relative extrapolation error per *extra* group sharing the PMU
    /// (standard deviation of the multiplicative error). The default 2%
    /// reflects kernels rotating at millisecond granularity over
    /// second-scale runs.
    pub extrapolation_noise_per_group: f64,
    /// Seed for the extrapolation noise stream.
    pub seed: u64,
}

impl Default for Multiplexer {
    fn default() -> Self {
        Multiplexer {
            extrapolation_noise_per_group: 0.02,
            seed: 0x4D55_5854,
        }
    }
}

impl Multiplexer {
    /// Collect `events` for one application in a **single run**, rotating
    /// counter groups through the PMU. Each estimate is the true count
    /// perturbed by extrapolation noise proportional to the rotation
    /// pressure (number of groups − 1).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] — multiplexing still honours the
    /// hardware's group constraints; it just rotates the groups in time.
    pub fn collect(
        &self,
        machine: &mut Machine,
        app: &dyn Application,
        events: &[EventId],
    ) -> Result<PmcVector, ScheduleError> {
        let groups = schedule(machine.catalog(), events)?;
        let record = machine.run(app);
        let pressure = groups.len().saturating_sub(1) as f64;
        let sigma = self.extrapolation_noise_per_group * pressure.sqrt();
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ machine.runs_executed());
        let mut values = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        for &id in events {
            if !seen.insert(id) {
                continue;
            }
            let truth = record.count(id);
            let noise = 1.0 + sigma * rng.standard_normal();
            values.insert(id, (truth * noise).max(0.0));
        }
        Ok(PmcVector {
            values,
            runs_used: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect_all;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::PlatformSpec;
    use pmca_stats::descriptive::relative_difference;

    fn machine() -> Machine {
        Machine::new(PlatformSpec::intel_skylake(), 3)
    }

    fn app() -> SyntheticApp {
        SyntheticApp::balanced("mux", 4e9)
    }

    fn many_events(machine: &Machine) -> Vec<EventId> {
        machine
            .catalog()
            .ids(&[
                "UOPS_EXECUTED_CORE",
                "MEM_INST_RETIRED_ALL_STORES",
                "MEM_INST_RETIRED_ALL_LOADS",
                "L2_RQSTS_MISS",
                "IDQ_MS_UOPS",
                "ICACHE_64B_IFTAG_MISS",
                "BR_MISP_RETIRED_ALL_BRANCHES",
                "LONGEST_LAT_CACHE_MISS",
                "ARITH_DIVIDER_COUNT",
                "MEM_LOAD_RETIRED_L3_MISS",
            ])
            .expect("catalog events")
    }

    #[test]
    fn single_run_regardless_of_event_count() {
        let mut m = machine();
        let events = many_events(&m);
        let grouped = collect_all(&mut m, &app(), &events).unwrap();
        let muxed = Multiplexer::default()
            .collect(&mut m, &app(), &events)
            .unwrap();
        assert!(grouped.runs_used >= 4, "grouped used {}", grouped.runs_used);
        assert_eq!(muxed.runs_used, 1);
        assert_eq!(muxed.values.len(), grouped.values.len());
    }

    #[test]
    fn estimates_track_truth_within_extrapolation_noise() {
        let mut m = machine();
        let events = many_events(&m);
        let muxed = Multiplexer::default()
            .collect(&mut m, &app(), &events)
            .unwrap();
        let grouped = collect_all(&mut m, &app(), &events).unwrap();
        for &id in &events {
            let rel = relative_difference(muxed.get(id), grouped.get(id));
            assert!(
                rel < 0.25,
                "{id}: muxed {} vs grouped {}",
                muxed.get(id),
                grouped.get(id)
            );
        }
    }

    #[test]
    fn single_group_has_no_extrapolation_noise_beyond_jitter() {
        // Four unconstrained events fit one group: duty = 1, no rotation.
        let mut m = machine();
        let events = m
            .catalog()
            .ids(&[
                "UOPS_EXECUTED_CORE",
                "MEM_INST_RETIRED_ALL_STORES",
                "IDQ_MS_UOPS",
                "L2_RQSTS_MISS",
            ])
            .unwrap();
        let muxed = Multiplexer::default()
            .collect(&mut m, &app(), &events)
            .unwrap();
        let grouped = collect_all(&mut m, &app(), &events).unwrap();
        for &id in &events {
            let rel = relative_difference(muxed.get(id), grouped.get(id));
            assert!(rel < 0.10, "{id}: {rel}");
        }
    }

    #[test]
    fn more_groups_more_error_on_average() {
        let mut m = machine();
        let few = m
            .catalog()
            .ids(&["UOPS_EXECUTED_CORE", "MEM_INST_RETIRED_ALL_STORES"])
            .unwrap();
        let many = many_events(&m);
        let mux = Multiplexer {
            extrapolation_noise_per_group: 0.05,
            seed: 1,
        };
        // Average relative deviation of repeated collections against a
        // grouped reference.
        let mut err_few = 0.0;
        let mut err_many = 0.0;
        let n = 12;
        for _ in 0..n {
            let ref_few = collect_all(&mut m, &app(), &few).unwrap();
            let mux_few = mux.collect(&mut m, &app(), &few).unwrap();
            err_few += relative_difference(mux_few.get(few[0]), ref_few.get(few[0]));
            let ref_many = collect_all(&mut m, &app(), &many).unwrap();
            let mux_many = mux.collect(&mut m, &app(), &many).unwrap();
            err_many += relative_difference(mux_many.get(many[0]), ref_many.get(many[0]));
        }
        assert!(
            err_many > err_few,
            "rotation pressure should cost accuracy: few {err_few}, many {err_many}"
        );
    }

    #[test]
    fn duplicate_requests_are_deduplicated() {
        let mut m = machine();
        let id = m.catalog().id("UOPS_EXECUTED_CORE").unwrap();
        let muxed = Multiplexer::default()
            .collect(&mut m, &app(), &[id, id])
            .unwrap();
        assert_eq!(muxed.values.len(), 1);
    }
}
