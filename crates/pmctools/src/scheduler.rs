//! Counter-group scheduling.
//!
//! Given a set of events, partition them into groups that one run of the
//! PMU can measure simultaneously: at most [`PROGRAMMABLE_COUNTERS`]
//! programmable events per group, each assignable to a distinct counter
//! compatible with its [`CounterConstraint`], honouring solo/pair
//! restrictions. Fixed-counter events are free and never occupy a group
//! slot.
//!
//! The packer is greedy first-fit over events ordered from most to least
//! constrained, with exact feasibility checking (backtracking bipartite
//! matching) per group — the same flavour of algorithm perf-multiplexing
//! tools use.

use pmca_cpusim::catalog::EventCatalog;
use pmca_cpusim::events::{CounterConstraint, EventId};
use pmca_obs::{Histogram, MetricsRegistry, Span};
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

/// Global-registry handle for scheduling time, resolved once per process.
fn schedule_seconds() -> &'static Histogram {
    static METRIC: OnceLock<Histogram> = OnceLock::new();
    METRIC.get_or_init(|| MetricsRegistry::global().histogram("pmca_collect_schedule_seconds", &[]))
}

/// Programmable counters per core on the paper's platforms — the origin of
/// the "only 3–4 PMCs per run" limitation.
pub const PROGRAMMABLE_COUNTERS: usize = 4;

/// One schedulable group of events (one application run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterGroup {
    /// Programmable events measured in this run.
    pub events: Vec<EventId>,
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// An event id is not part of the given catalog.
    UnknownEvent(EventId),
    /// An event admits no programmable counter at all (its mask is empty).
    Unschedulable(EventId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnknownEvent(id) => write!(f, "event {id} not in catalog"),
            ScheduleError::Unschedulable(id) => write!(f, "event {id} fits no counter"),
        }
    }
}

impl Error for ScheduleError {}

/// Partition `events` into valid counter groups. Fixed-counter events are
/// omitted from the groups (they are always collected); duplicates are
/// scheduled once.
///
/// # Errors
///
/// Returns [`ScheduleError`] if an event is unknown or inherently
/// unschedulable.
pub fn schedule(
    catalog: &EventCatalog,
    events: &[EventId],
) -> Result<Vec<CounterGroup>, ScheduleError> {
    let _span = Span::enter(schedule_seconds());
    let mut seen = std::collections::HashSet::new();
    let mut programmable = Vec::new();
    for &id in events {
        if id.0 >= catalog.len() {
            return Err(ScheduleError::UnknownEvent(id));
        }
        if !seen.insert(id) {
            continue;
        }
        let c = catalog.event(id).constraint;
        match c {
            CounterConstraint::Fixed => {}
            CounterConstraint::CounterMask(0) => return Err(ScheduleError::Unschedulable(id)),
            _ => programmable.push(id),
        }
    }

    // Most-constrained first: solo, then pair, then masked (narrow masks
    // first), then unconstrained.
    programmable.sort_by_key(|&id| {
        let c = catalog.event(id).constraint;
        let rank = match c {
            CounterConstraint::Solo => 0,
            CounterConstraint::PairOnly => 1,
            CounterConstraint::CounterMask(m) => 2 + m.count_ones() as usize,
            _ => 16,
        };
        (rank, id)
    });

    let mut groups: Vec<Vec<EventId>> = Vec::new();
    'next_event: for &id in &programmable {
        for group in groups.iter_mut() {
            if group_accepts(catalog, group, id) {
                group.push(id);
                continue 'next_event;
            }
        }
        groups.push(vec![id]);
    }

    Ok(groups
        .into_iter()
        .map(|events| CounterGroup { events })
        .collect())
}

/// Whether `group ∪ {candidate}` is still simultaneously measurable.
fn group_accepts(catalog: &EventCatalog, group: &[EventId], candidate: EventId) -> bool {
    let total = group.len() + 1;
    if total > PROGRAMMABLE_COUNTERS {
        return false;
    }
    // Solo/pair group-size restrictions apply to every member.
    for &id in group.iter().chain(std::iter::once(&candidate)) {
        if catalog.event(id).constraint.max_group_size() < total {
            return false;
        }
    }
    // Exact counter-assignment feasibility.
    let mut members: Vec<EventId> = group.to_vec();
    members.push(candidate);
    assignment_exists(catalog, &members, 0, &mut [false; PROGRAMMABLE_COUNTERS])
}

/// Backtracking bipartite matching: can events `idx..` each get a distinct
/// allowed counter?
fn assignment_exists(
    catalog: &EventCatalog,
    members: &[EventId],
    idx: usize,
    used: &mut [bool; PROGRAMMABLE_COUNTERS],
) -> bool {
    if idx == members.len() {
        return true;
    }
    let constraint = catalog.event(members[idx]).constraint;
    for counter in 0..PROGRAMMABLE_COUNTERS {
        if !used[counter] && constraint.allows_counter(counter) {
            used[counter] = true;
            if assignment_exists(catalog, members, idx + 1, used) {
                used[counter] = false;
                return true;
            }
            used[counter] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::spec::MicroArch;

    fn catalog(arch: MicroArch) -> EventCatalog {
        EventCatalog::for_micro_arch(arch)
    }

    fn constraint_of(cat: &EventCatalog, id: EventId) -> CounterConstraint {
        cat.event(id).constraint
    }

    /// Validate a schedule: all requested programmable events appear
    /// exactly once, every group is feasible.
    fn validate(cat: &EventCatalog, events: &[EventId], groups: &[CounterGroup]) {
        let mut scheduled = std::collections::HashSet::new();
        for g in groups {
            assert!(!g.events.is_empty());
            assert!(g.events.len() <= PROGRAMMABLE_COUNTERS);
            for &id in &g.events {
                assert!(scheduled.insert(id), "{id} scheduled twice");
                assert!(
                    constraint_of(cat, id).max_group_size() >= g.events.len(),
                    "group-size violation for {id}"
                );
            }
            let mut used = [false; PROGRAMMABLE_COUNTERS];
            assert!(
                assignment_exists(cat, &g.events, 0, &mut used),
                "infeasible group {:?}",
                g.events
            );
        }
        for &id in events {
            if constraint_of(cat, id) != CounterConstraint::Fixed {
                assert!(scheduled.contains(&id), "{id} missing from schedule");
            }
        }
    }

    #[test]
    fn two_free_events_share_a_run() {
        let cat = catalog(MicroArch::Haswell);
        let ids = cat.ids(&["IDQ_MS_UOPS", "L2_RQSTS_MISS"]).unwrap();
        let groups = schedule(&cat, &ids).unwrap();
        assert_eq!(groups.len(), 1);
        validate(&cat, &ids, &groups);
    }

    #[test]
    fn six_free_events_need_two_runs() {
        // The paper's Class A setup: six PMCs, two collection runs.
        let cat = catalog(MicroArch::Haswell);
        let ids = cat
            .ids(&[
                "IDQ_MITE_UOPS",
                "IDQ_MS_UOPS",
                "ICACHE_64B_IFTAG_MISS",
                "L2_RQSTS_MISS",
                "UOPS_EXECUTED_PORT_PORT_6",
                "IDQ_DSB_UOPS",
            ])
            .unwrap();
        let groups = schedule(&cat, &ids).unwrap();
        assert_eq!(groups.len(), 2);
        validate(&cat, &ids, &groups);
    }

    #[test]
    fn solo_events_get_their_own_run() {
        let cat = catalog(MicroArch::Haswell);
        let ids = cat
            .ids(&["ARITH_DIVIDER_COUNT", "IDQ_MS_UOPS", "L2_RQSTS_MISS"])
            .unwrap();
        let groups = schedule(&cat, &ids).unwrap();
        assert_eq!(groups.len(), 2);
        let solo_group = groups.iter().find(|g| g.events.contains(&ids[0])).unwrap();
        assert_eq!(solo_group.events.len(), 1);
        validate(&cat, &ids, &groups);
    }

    #[test]
    fn pair_events_never_exceed_two_per_run() {
        let cat = catalog(MicroArch::Skylake);
        let ids = cat
            .ids(&[
                "MEM_LOAD_RETIRED_L1_HIT",
                "MEM_LOAD_RETIRED_L2_HIT",
                "MEM_LOAD_RETIRED_L3_HIT",
                "MEM_LOAD_RETIRED_L3_MISS",
            ])
            .unwrap();
        let groups = schedule(&cat, &ids).unwrap();
        assert_eq!(groups.len(), 2);
        validate(&cat, &ids, &groups);
    }

    #[test]
    fn fixed_events_are_free() {
        let cat = catalog(MicroArch::Haswell);
        let ids = cat
            .ids(&["INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE"])
            .unwrap();
        let groups = schedule(&cat, &ids).unwrap();
        assert!(groups.is_empty());
    }

    #[test]
    fn duplicates_are_scheduled_once() {
        let cat = catalog(MicroArch::Haswell);
        let id = cat.id("IDQ_MS_UOPS").unwrap();
        let groups = schedule(&cat, &[id, id, id]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].events.len(), 1);
    }

    #[test]
    fn unknown_event_is_rejected() {
        let cat = catalog(MicroArch::Haswell);
        let bogus = EventId(99_999);
        assert_eq!(
            schedule(&cat, &[bogus]),
            Err(ScheduleError::UnknownEvent(bogus))
        );
    }

    #[test]
    fn full_haswell_catalog_schedules_in_about_53_runs() {
        let cat = catalog(MicroArch::Haswell);
        let all = cat.all_ids();
        let groups = schedule(&cat, &all).unwrap();
        validate(&cat, &all, &groups);
        let runs = groups.len();
        assert!(
            (38..=68).contains(&runs),
            "Haswell needs {runs} runs (paper: ≈53)"
        );
    }

    #[test]
    fn full_skylake_catalog_schedules_in_about_99_runs() {
        let cat = catalog(MicroArch::Skylake);
        let all = cat.all_ids();
        let groups = schedule(&cat, &all).unwrap();
        validate(&cat, &all, &groups);
        let runs = groups.len();
        assert!(
            (75..=125).contains(&runs),
            "Skylake needs {runs} runs (paper: ≈99)"
        );
    }

    #[test]
    fn mask_conflicts_force_extra_runs() {
        // Two events pinned to the same single counter cannot share a run.
        let cat = catalog(MicroArch::Haswell);
        let pinned: Vec<EventId> = cat
            .iter()
            .filter(|(_, e)| e.constraint == CounterConstraint::CounterMask(0b0001))
            .map(|(id, _)| id)
            .take(3)
            .collect();
        assert!(
            pinned.len() >= 2,
            "catalog should contain bank-0 offcore events"
        );
        let groups = schedule(&cat, &pinned).unwrap();
        assert_eq!(groups.len(), pinned.len());
    }
}
