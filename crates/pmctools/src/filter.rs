//! The paper's event filter.
//!
//! *"We eliminate PMCs with counts less than or equal to 10. The eliminated
//! PMCs have no significance … since they are non-reproducible over several
//! runs."* Applied to the simulated catalogs this reduces Haswell's 164
//! events to 151 and Skylake's 385 to 323, matching the paper.

use crate::collector::collect_sweeps;
use crate::scheduler::ScheduleError;
use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_stats::descriptive::{coefficient_of_variation, mean};

/// Why an event was kept or dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterOutcome {
    /// Event survives: meaningful counts, reproducible.
    Kept,
    /// Mean count was at or below the low-count threshold.
    LowCount {
        /// Observed mean count.
        mean: f64,
    },
    /// Coefficient of variation across runs exceeded the threshold.
    NonReproducible {
        /// Observed coefficient of variation.
        cv: f64,
    },
}

/// Configuration and results of a filtering pass.
#[derive(Debug, Clone)]
pub struct EventFilter {
    /// Counts at or below this are discarded (paper: 10).
    pub low_count_threshold: f64,
    /// Events with a cross-run CV above this are discarded.
    pub cv_threshold: f64,
    /// Sweeps per probe application.
    pub repeats: usize,
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter {
            low_count_threshold: 10.0,
            cv_threshold: 0.25,
            repeats: 3,
        }
    }
}

impl EventFilter {
    /// Probe the whole catalog with `probes` and classify every event.
    /// An event is kept only if it is meaningful and reproducible on *at
    /// least one* probe application (events that count nothing anywhere
    /// tell us nothing about energy).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from collection.
    pub fn classify(
        &self,
        machine: &mut Machine,
        probes: &[&dyn Application],
    ) -> Result<Vec<(EventId, FilterOutcome)>, ScheduleError> {
        let all = machine.catalog().all_ids();
        let mut best: Vec<Option<FilterOutcome>> = vec![None; all.len()];
        for &probe in probes {
            let sweeps = collect_sweeps(machine, probe, &all, self.repeats)?;
            for &id in &sweeps.events {
                let samples: Vec<f64> = sweeps.samples.iter().map(|s| s[&id]).collect();
                let m = mean(&samples);
                let outcome = if m <= self.low_count_threshold {
                    FilterOutcome::LowCount { mean: m }
                } else {
                    let cv = coefficient_of_variation(&samples);
                    if cv > self.cv_threshold {
                        FilterOutcome::NonReproducible { cv }
                    } else {
                        FilterOutcome::Kept
                    }
                };
                let slot = &mut best[id.0];
                *slot = Some(match (*slot, outcome) {
                    (Some(FilterOutcome::Kept), _) => FilterOutcome::Kept,
                    (_, o) => o,
                });
            }
        }
        Ok(all
            .into_iter()
            .map(|id| {
                (
                    id,
                    best[id.0].unwrap_or(FilterOutcome::LowCount { mean: 0.0 }),
                )
            })
            .collect())
    }

    /// Event ids that survive the filter.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from collection.
    pub fn survivors(
        &self,
        machine: &mut Machine,
        probes: &[&dyn Application],
    ) -> Result<Vec<EventId>, ScheduleError> {
        Ok(self
            .classify(machine, probes)?
            .into_iter()
            .filter(|(_, o)| *o == FilterOutcome::Kept)
            .map(|(id, _)| id)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::catalog::{HASWELL_DEGENERATE_COUNT, HASWELL_EVENT_COUNT};
    use pmca_cpusim::PlatformSpec;

    #[test]
    fn filter_reproduces_paper_cardinality_on_haswell() {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 31);
        // A diverse probe set, as in the paper: events that count nothing
        // on *any* probe (FP counters on an integer app, say) would be
        // wrongly condemned by a single probe.
        let balanced = SyntheticApp::balanced("probe", 5e9);
        let dgemm = pmca_workloads::Dgemm::new(6_000);
        let fft = pmca_workloads::Fft2d::new(10_000);
        let survivors = EventFilter::default()
            .survivors(&mut m, &[&balanced, &dgemm, &fft])
            .unwrap();
        // Paper: 164 → 151.
        let expected = HASWELL_EVENT_COUNT - HASWELL_DEGENERATE_COUNT;
        let got = survivors.len();
        assert!(
            (expected - 4..=expected + 4).contains(&got),
            "expected ≈{expected} survivors, got {got}"
        );
    }

    #[test]
    fn degenerate_events_are_dropped() {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 31);
        let probe = SyntheticApp::balanced("probe2", 5e9);
        let outcomes = EventFilter::default().classify(&mut m, &[&probe]).unwrap();
        let alignment = m.catalog().id("ALIGNMENT_FAULTS").unwrap();
        let (_, o) = outcomes.iter().find(|(id, _)| *id == alignment).unwrap();
        assert_ne!(*o, FilterOutcome::Kept, "degenerate event survived: {o:?}");
    }

    #[test]
    fn workhorse_events_survive() {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 31);
        let probe = SyntheticApp::balanced("probe3", 5e9);
        let survivors = EventFilter::default().survivors(&mut m, &[&probe]).unwrap();
        for name in [
            "INSTR_RETIRED_ANY",
            "IDQ_MS_UOPS",
            "L2_RQSTS_MISS",
            "ARITH_DIVIDER_COUNT",
        ] {
            let id = m.catalog().id(name).unwrap();
            assert!(survivors.contains(&id), "{name} was filtered out");
        }
    }

    #[test]
    fn multiple_probes_union_keeps_events() {
        let mut m = Machine::new(PlatformSpec::intel_haswell(), 31);
        let light = SyntheticApp::balanced("light", 2e8).with_memory_intensity(0.01);
        let heavy = SyntheticApp::balanced("heavy", 8e9).with_memory_intensity(0.6);
        let solo = EventFilter::default().survivors(&mut m, &[&light]).unwrap();
        let both = EventFilter::default()
            .survivors(&mut m, &[&light, &heavy])
            .unwrap();
        assert!(both.len() >= solo.len());
    }
}
