//! Multi-run PMC collection.
//!
//! Each counter group requires one full run of the application, so a PMC
//! vector is assembled from counts that come from *different* executions —
//! exactly the situation on real hardware, and the reason reproducibility
//! (stage 1 of the additivity test) matters at all.

use crate::scheduler::{schedule, CounterGroup, ScheduleError};
use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::{Machine, RunRecord};
use pmca_obs::{Counter, Histogram, MetricsRegistry, Span, TraceSpan};
use pmca_parallel::ThreadPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Global-registry handles for the collector, resolved once per process.
struct CollectMetrics {
    /// Logical application runs consumed (one per counter group per
    /// sweep — the cost the methodology pays on real hardware).
    runs: Counter,
    sweep_seconds: Histogram,
    /// Simulator-run memo traffic: a hit means a counter group was served
    /// from an already-simulated run instead of a fresh simulation.
    memo_hits: Counter,
    memo_misses: Counter,
}

fn collect_metrics() -> &'static CollectMetrics {
    static METRICS: OnceLock<CollectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = MetricsRegistry::global();
        CollectMetrics {
            runs: registry.counter("pmca_collect_runs_total", &[]),
            sweep_seconds: registry.histogram("pmca_collect_sweep_seconds", &[]),
            memo_hits: registry.counter("pmca_collect_memo_hits_total", &[]),
            memo_misses: registry.counter("pmca_collect_memo_misses_total", &[]),
        }
    })
}

/// Keyed cache of simulated runs: `(measurement index, run index)` →
/// the simulated [`RunRecord`].
///
/// The simulator produces the counts of *every* catalog event in one run,
/// so within a sweep the per-repeat run can be shared across all counter
/// groups instead of being re-simulated per group — the same
/// `(app, platform)` run is simulated exactly once per repeat. The memo is
/// also the synchronization point for the parallel warm-up: each
/// `(measurement, run index)` key is simulated by exactly one pool task.
struct RunMemo {
    map: Mutex<HashMap<(usize, u64), Arc<RunRecord>>>,
}

impl RunMemo {
    fn new() -> Self {
        RunMemo {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Return the memoized run for `key`, simulating it on a miss.
    fn get_or_run(
        &self,
        machine: &Machine,
        app: &dyn Application,
        key: (usize, u64),
    ) -> Arc<RunRecord> {
        let metrics = collect_metrics();
        if let Some(record) = self.map.lock().expect("memo poisoned").get(&key) {
            metrics.memo_hits.inc();
            return Arc::clone(record);
        }
        metrics.memo_misses.inc();
        let record = Arc::new(machine.run_at(app, key.1));
        Arc::clone(
            self.map
                .lock()
                .expect("memo poisoned")
                .entry(key)
                .or_insert(record),
        )
    }
}

/// A collected PMC vector: one (averaged) count per requested event, plus
/// bookkeeping about the collection cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PmcVector {
    /// Event → count (sample mean when collected with repeats).
    pub values: HashMap<EventId, f64>,
    /// Number of application runs the collection consumed.
    pub runs_used: usize,
}

impl PmcVector {
    /// Count for one event.
    ///
    /// # Panics
    ///
    /// Panics if the event was not part of the collection request.
    pub fn get(&self, id: EventId) -> f64 {
        *self
            .values
            .get(&id)
            .unwrap_or_else(|| panic!("event {id} was not collected"))
    }

    /// Counts in the order of `ids`.
    ///
    /// # Panics
    ///
    /// Panics if any event was not part of the collection request.
    pub fn in_order(&self, ids: &[EventId]) -> Vec<f64> {
        ids.iter().map(|&id| self.get(id)).collect()
    }
}

/// Collect `events` for one application: schedules the events into counter
/// groups and performs one run per group.
///
/// # Errors
///
/// Propagates [`ScheduleError`] for unknown/unschedulable events.
pub fn collect_all(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
) -> Result<PmcVector, ScheduleError> {
    collect_with_repeats(machine, app, events, 1)
}

/// Collect `events`, repeating the whole group sweep `repeats` times and
/// averaging — the paper's sample-mean methodology applied to PMCs.
///
/// # Errors
///
/// Propagates [`ScheduleError`]. `repeats` of zero is treated as one.
pub fn collect_with_repeats(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
    repeats: usize,
) -> Result<PmcVector, ScheduleError> {
    let sweeps = collect_sweeps(machine, app, events, repeats.max(1))?;
    let repeats = sweeps.samples.len() as f64;
    let mut values = HashMap::new();
    for &id in &sweeps.events {
        let total: f64 = sweeps.samples.iter().map(|s| s[&id]).sum();
        values.insert(id, total / repeats);
    }
    Ok(PmcVector {
        values,
        runs_used: sweeps.runs_used,
    })
}

/// Raw repeated sweeps, one map per repetition — used by the
/// reproducibility stage of the additivity test.
#[derive(Debug, Clone)]
pub struct SweepSamples {
    /// Deduplicated event ids actually collected.
    pub events: Vec<EventId>,
    /// One complete PMC map per sweep.
    pub samples: Vec<HashMap<EventId, f64>>,
    /// Total application runs consumed.
    pub runs_used: usize,
}

/// Perform `repeats` full collection sweeps of `events`.
///
/// # Errors
///
/// Propagates [`ScheduleError`].
pub fn collect_sweeps(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
    repeats: usize,
) -> Result<SweepSamples, ScheduleError> {
    let mut batch = collect_sweeps_batch(machine, &[app], events, repeats, &ThreadPool::global())?;
    Ok(batch.pop().expect("one app in, one sample set out"))
}

/// Perform `repeats` sweeps of `events` for every application in `apps`,
/// executing the underlying simulator runs on `pool`.
///
/// Bit-identical to calling [`collect_sweeps`] on each app in sequence at
/// any thread count: run indices are reserved serially per app before the
/// fan-out, and each index's noise stream depends only on the index.
///
/// # Errors
///
/// Propagates [`ScheduleError`]. `repeats` of zero is treated as one.
pub fn collect_sweeps_batch(
    machine: &mut Machine,
    apps: &[&dyn Application],
    events: &[EventId],
    repeats: usize,
    pool: &ThreadPool,
) -> Result<Vec<SweepSamples>, ScheduleError> {
    batch_impl(
        machine,
        apps,
        events,
        repeats,
        pool,
        RunPolicy::SharedPerRepeat,
    )
}

/// [`collect_sweeps_batch`] with one *fresh* simulator run per counter
/// group per repeat — the cost model of real multiplexed PMU collection,
/// where a run can only read one group's worth of counters.
///
/// The additivity methodology depends on this: stage 1 judges
/// reproducibility from the scatter of independent runs, so counter groups
/// must not share a noise realization. Run indices are consumed in exactly
/// the order the serial per-app, per-repeat, per-group loop would consume
/// them, keeping the output bit-identical at any thread count *and*
/// bit-identical to the historical serial collector.
///
/// # Errors
///
/// Propagates [`ScheduleError`]. `repeats` of zero is treated as one.
pub fn collect_sweeps_batch_per_group(
    machine: &mut Machine,
    apps: &[&dyn Application],
    events: &[EventId],
    repeats: usize,
    pool: &ThreadPool,
) -> Result<Vec<SweepSamples>, ScheduleError> {
    batch_impl(machine, apps, events, repeats, pool, RunPolicy::RunPerGroup)
}

/// How batched collection maps counter groups onto simulator runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunPolicy {
    /// All counter groups of one repeat read a single memoized run — the
    /// simulator produces every catalog event per run, so re-simulating
    /// per group is redundant for plain sweep collection.
    SharedPerRepeat,
    /// Every counter group pays its own run, as real hardware would.
    RunPerGroup,
}

fn batch_impl(
    machine: &mut Machine,
    apps: &[&dyn Application],
    events: &[EventId],
    repeats: usize,
    pool: &ThreadPool,
    policy: RunPolicy,
) -> Result<Vec<SweepSamples>, ScheduleError> {
    let metrics = collect_metrics();
    let _span = Span::enter(&metrics.sweep_seconds);
    let _trace = TraceSpan::enter("collect.sweep");
    let groups = schedule(machine.catalog(), events)?;
    let mut dedup: Vec<EventId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &id in events {
        if seen.insert(id) {
            dedup.push(id);
        }
    }
    let fixed: Vec<EventId> = dedup
        .iter()
        .copied()
        .filter(|&id| {
            machine.catalog().event(id).constraint == pmca_cpusim::events::CounterConstraint::Fixed
        })
        .collect();

    let repeats = repeats.max(1);
    // Runs one sweep consumes, and the run index of (repeat, group)
    // relative to an app's base index.
    let per_sweep = groups.len().max(1) as u64;
    let run_of = |r: u64, g: u64| match policy {
        RunPolicy::SharedPerRepeat => r,
        RunPolicy::RunPerGroup => r * per_sweep + g,
    };
    let runs_per_app = match policy {
        RunPolicy::SharedPerRepeat => repeats as u64,
        RunPolicy::RunPerGroup => repeats as u64 * per_sweep,
    };
    // Reserve run indices serially, in the same order the serial
    // per-app collect loop would consume them.
    let bases: Vec<u64> = apps
        .iter()
        .map(|_| machine.reserve_runs(runs_per_app))
        .collect();

    // Warm the run memo in parallel: one simulation per distinct
    // (app, run index) key, each claimed by exactly one pool task.
    let memo = RunMemo::new();
    let work: Vec<(usize, u64)> = (0..apps.len())
        .flat_map(|a| {
            let base = bases[a];
            (0..runs_per_app).map(move |o| (a, base + o))
        })
        .collect();
    let frozen: &Machine = machine;
    pool.par_map(&work, |&(a, run_index)| {
        memo.get_or_run(frozen, apps[a], (a, run_index));
    });

    // Deterministic serial assembly from the memo.
    let mut out = Vec::with_capacity(apps.len());
    for (a, app) in apps.iter().enumerate() {
        let mut samples = Vec::with_capacity(repeats);
        let mut runs_used = 0;
        for r in 0..repeats as u64 {
            let mut sweep = HashMap::new();
            if groups.is_empty() {
                // Only fixed events requested: still need one run to read
                // them.
                let record = memo.get_or_run(frozen, *app, (a, bases[a] + run_of(r, 0)));
                runs_used += 1;
                for &id in &fixed {
                    sweep.insert(id, record.count(id));
                }
            }
            for (g, CounterGroup { events: group }) in groups.iter().enumerate() {
                let key = (a, bases[a] + run_of(r, g as u64));
                let record = memo.get_or_run(frozen, *app, key);
                runs_used += 1;
                for &id in group {
                    sweep.insert(id, record.count(id));
                }
                // Fixed counters ride along with every run; take them from
                // the first group's run.
                for &id in &fixed {
                    sweep.entry(id).or_insert_with(|| record.count(id));
                }
            }
            samples.push(sweep);
        }
        metrics.runs.add(runs_used as u64);
        out.push(SweepSamples {
            events: dedup.clone(),
            samples,
            runs_used,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::PlatformSpec;

    fn machine() -> Machine {
        Machine::new(PlatformSpec::intel_haswell(), 23)
    }

    fn app() -> SyntheticApp {
        SyntheticApp::balanced("collect-me", 3e9)
    }

    #[test]
    fn collects_requested_events_only() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS", "L2_RQSTS_MISS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.values.len(), 2);
        assert!(v.get(ids[0]) > 0.0);
    }

    #[test]
    fn runs_used_matches_group_count() {
        let mut m = machine();
        // Divider is solo: 1 group for it + 1 for the other two.
        let ids = m
            .catalog()
            .ids(&["ARITH_DIVIDER_COUNT", "IDQ_MS_UOPS", "L2_RQSTS_MISS"])
            .unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 2);
    }

    #[test]
    fn fixed_events_ride_along() {
        let mut m = machine();
        let ids = m
            .catalog()
            .ids(&["INSTR_RETIRED_ANY", "IDQ_MS_UOPS"])
            .unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 1);
        assert!(v.get(ids[0]) > 1e9);
    }

    #[test]
    fn fixed_only_request_still_runs_once() {
        let mut m = machine();
        let ids = m.catalog().ids(&["INSTR_RETIRED_ANY"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 1);
        assert!(v.get(ids[0]) > 0.0);
    }

    #[test]
    fn repeats_average_out_jitter() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let once = collect_all(&mut m, &app(), &ids).unwrap();
        let avg = collect_with_repeats(&mut m, &app(), &ids, 10).unwrap();
        // Both estimate the same mean; the averaged one uses 10× the runs.
        assert_eq!(avg.runs_used, 10 * once.runs_used);
        let rel = (avg.get(ids[0]) - once.get(ids[0])).abs() / avg.get(ids[0]);
        assert!(rel < 0.2);
    }

    #[test]
    fn sweeps_expose_per_run_variation() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let sweeps = collect_sweeps(&mut m, &app(), &ids, 5).unwrap();
        assert_eq!(sweeps.samples.len(), 5);
        let first = sweeps.samples[0][&ids[0]];
        assert!(
            sweeps.samples.iter().any(|s| s[&ids[0]] != first),
            "no jitter visible"
        );
    }

    #[test]
    fn in_order_preserves_request_order() {
        let mut m = machine();
        let ids = m.catalog().ids(&["L2_RQSTS_MISS", "IDQ_MS_UOPS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        let row = v.in_order(&ids);
        assert_eq!(row[0], v.get(ids[0]));
        assert_eq!(row[1], v.get(ids[1]));
    }

    #[test]
    #[should_panic(expected = "was not collected")]
    fn get_of_uncollected_event_panics() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        let other = m.catalog().id("L2_RQSTS_MISS").unwrap();
        let _ = v.get(other);
    }
}
