//! Multi-run PMC collection.
//!
//! Each counter group requires one full run of the application, so a PMC
//! vector is assembled from counts that come from *different* executions —
//! exactly the situation on real hardware, and the reason reproducibility
//! (stage 1 of the additivity test) matters at all.

use crate::scheduler::{schedule, CounterGroup, ScheduleError};
use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_obs::{Counter, Histogram, MetricsRegistry, Span, TraceSpan};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Global-registry handles for the collector, resolved once per process.
fn collect_metrics() -> &'static (Counter, Histogram) {
    static METRICS: OnceLock<(Counter, Histogram)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = MetricsRegistry::global();
        (
            registry.counter("pmca_collect_runs_total", &[]),
            registry.histogram("pmca_collect_sweep_seconds", &[]),
        )
    })
}

/// A collected PMC vector: one (averaged) count per requested event, plus
/// bookkeeping about the collection cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PmcVector {
    /// Event → count (sample mean when collected with repeats).
    pub values: HashMap<EventId, f64>,
    /// Number of application runs the collection consumed.
    pub runs_used: usize,
}

impl PmcVector {
    /// Count for one event.
    ///
    /// # Panics
    ///
    /// Panics if the event was not part of the collection request.
    pub fn get(&self, id: EventId) -> f64 {
        *self
            .values
            .get(&id)
            .unwrap_or_else(|| panic!("event {id} was not collected"))
    }

    /// Counts in the order of `ids`.
    ///
    /// # Panics
    ///
    /// Panics if any event was not part of the collection request.
    pub fn in_order(&self, ids: &[EventId]) -> Vec<f64> {
        ids.iter().map(|&id| self.get(id)).collect()
    }
}

/// Collect `events` for one application: schedules the events into counter
/// groups and performs one run per group.
///
/// # Errors
///
/// Propagates [`ScheduleError`] for unknown/unschedulable events.
pub fn collect_all(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
) -> Result<PmcVector, ScheduleError> {
    collect_with_repeats(machine, app, events, 1)
}

/// Collect `events`, repeating the whole group sweep `repeats` times and
/// averaging — the paper's sample-mean methodology applied to PMCs.
///
/// # Errors
///
/// Propagates [`ScheduleError`]. `repeats` of zero is treated as one.
pub fn collect_with_repeats(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
    repeats: usize,
) -> Result<PmcVector, ScheduleError> {
    let sweeps = collect_sweeps(machine, app, events, repeats.max(1))?;
    let repeats = sweeps.samples.len() as f64;
    let mut values = HashMap::new();
    for &id in &sweeps.events {
        let total: f64 = sweeps.samples.iter().map(|s| s[&id]).sum();
        values.insert(id, total / repeats);
    }
    Ok(PmcVector {
        values,
        runs_used: sweeps.runs_used,
    })
}

/// Raw repeated sweeps, one map per repetition — used by the
/// reproducibility stage of the additivity test.
#[derive(Debug, Clone)]
pub struct SweepSamples {
    /// Deduplicated event ids actually collected.
    pub events: Vec<EventId>,
    /// One complete PMC map per sweep.
    pub samples: Vec<HashMap<EventId, f64>>,
    /// Total application runs consumed.
    pub runs_used: usize,
}

/// Perform `repeats` full collection sweeps of `events`.
///
/// # Errors
///
/// Propagates [`ScheduleError`].
pub fn collect_sweeps(
    machine: &mut Machine,
    app: &dyn Application,
    events: &[EventId],
    repeats: usize,
) -> Result<SweepSamples, ScheduleError> {
    let (run_counter, sweep_seconds) = collect_metrics();
    let _span = Span::enter(sweep_seconds);
    let _trace = TraceSpan::enter("collect.sweep");
    let groups = schedule(machine.catalog(), events)?;
    let mut dedup: Vec<EventId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &id in events {
        if seen.insert(id) {
            dedup.push(id);
        }
    }
    let fixed: Vec<EventId> = dedup
        .iter()
        .copied()
        .filter(|&id| {
            machine.catalog().event(id).constraint == pmca_cpusim::events::CounterConstraint::Fixed
        })
        .collect();

    let mut samples = Vec::with_capacity(repeats);
    let mut runs_used = 0;
    for _ in 0..repeats.max(1) {
        let mut sweep = HashMap::new();
        if groups.is_empty() {
            // Only fixed events requested: still need one run to read them.
            let record = machine.run(app);
            runs_used += 1;
            for &id in &fixed {
                sweep.insert(id, record.count(id));
            }
        }
        for CounterGroup { events: group } in &groups {
            let record = machine.run(app);
            runs_used += 1;
            for &id in group {
                sweep.insert(id, record.count(id));
            }
            // Fixed counters ride along with every run; take them from the
            // first group's run.
            for &id in &fixed {
                sweep.entry(id).or_insert_with(|| record.count(id));
            }
        }
        samples.push(sweep);
    }
    run_counter.add(runs_used as u64);
    Ok(SweepSamples {
        events: dedup,
        samples,
        runs_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::app::SyntheticApp;
    use pmca_cpusim::PlatformSpec;

    fn machine() -> Machine {
        Machine::new(PlatformSpec::intel_haswell(), 23)
    }

    fn app() -> SyntheticApp {
        SyntheticApp::balanced("collect-me", 3e9)
    }

    #[test]
    fn collects_requested_events_only() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS", "L2_RQSTS_MISS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.values.len(), 2);
        assert!(v.get(ids[0]) > 0.0);
    }

    #[test]
    fn runs_used_matches_group_count() {
        let mut m = machine();
        // Divider is solo: 1 group for it + 1 for the other two.
        let ids = m
            .catalog()
            .ids(&["ARITH_DIVIDER_COUNT", "IDQ_MS_UOPS", "L2_RQSTS_MISS"])
            .unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 2);
    }

    #[test]
    fn fixed_events_ride_along() {
        let mut m = machine();
        let ids = m
            .catalog()
            .ids(&["INSTR_RETIRED_ANY", "IDQ_MS_UOPS"])
            .unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 1);
        assert!(v.get(ids[0]) > 1e9);
    }

    #[test]
    fn fixed_only_request_still_runs_once() {
        let mut m = machine();
        let ids = m.catalog().ids(&["INSTR_RETIRED_ANY"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        assert_eq!(v.runs_used, 1);
        assert!(v.get(ids[0]) > 0.0);
    }

    #[test]
    fn repeats_average_out_jitter() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let once = collect_all(&mut m, &app(), &ids).unwrap();
        let avg = collect_with_repeats(&mut m, &app(), &ids, 10).unwrap();
        // Both estimate the same mean; the averaged one uses 10× the runs.
        assert_eq!(avg.runs_used, 10 * once.runs_used);
        let rel = (avg.get(ids[0]) - once.get(ids[0])).abs() / avg.get(ids[0]);
        assert!(rel < 0.2);
    }

    #[test]
    fn sweeps_expose_per_run_variation() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let sweeps = collect_sweeps(&mut m, &app(), &ids, 5).unwrap();
        assert_eq!(sweeps.samples.len(), 5);
        let first = sweeps.samples[0][&ids[0]];
        assert!(
            sweeps.samples.iter().any(|s| s[&ids[0]] != first),
            "no jitter visible"
        );
    }

    #[test]
    fn in_order_preserves_request_order() {
        let mut m = machine();
        let ids = m.catalog().ids(&["L2_RQSTS_MISS", "IDQ_MS_UOPS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        let row = v.in_order(&ids);
        assert_eq!(row[0], v.get(ids[0]));
        assert_eq!(row[1], v.get(ids[1]));
    }

    #[test]
    #[should_panic(expected = "was not collected")]
    fn get_of_uncollected_event_panics() {
        let mut m = machine();
        let ids = m.catalog().ids(&["IDQ_MS_UOPS"]).unwrap();
        let v = collect_all(&mut m, &app(), &ids).unwrap();
        let other = m.catalog().id("L2_RQSTS_MISS").unwrap();
        let _ = v.get(other);
    }
}
