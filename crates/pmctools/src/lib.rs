//! Likwid-like PMC collection against the simulated platform.
//!
//! Real PMUs expose only a handful of programmable counters (four per core
//! on the paper's platforms), and many events carry placement restrictions
//! — some run on specific counters, some tolerate only one companion, some
//! must be measured alone. Collecting the full catalog therefore takes
//! *many* runs of the same application: the paper reports ≈ 53 runs on
//! Haswell and ≈ 99 on Skylake. This crate reproduces that machinery:
//!
//! * [`scheduler`] — partitions a requested event set into valid counter
//!   groups (≤ 4 programmable events, constraints respected);
//! * [`collector`] — executes one run per group and assembles the full
//!   PMC vector, or repeated sweeps for reproducibility studies;
//! * [`filter`] — the paper's event filter: drop events whose counts are
//!   ≤ 10 or which are not reproducible across runs.
//!
//! # Examples
//!
//! ```
//! use pmca_cpusim::{Machine, PlatformSpec};
//! use pmca_cpusim::app::SyntheticApp;
//! use pmca_pmctools::scheduler::schedule;
//! use pmca_pmctools::collector::collect_all;
//!
//! let mut machine = Machine::new(PlatformSpec::intel_haswell(), 17);
//! let ids = machine.catalog().ids(&["IDQ_MS_UOPS", "L2_RQSTS_MISS"]).unwrap();
//! let groups = schedule(machine.catalog(), &ids).unwrap();
//! assert_eq!(groups.len(), 1); // two unconstrained events share one run
//! let app = SyntheticApp::balanced("demo", 1e9);
//! let pmcs = collect_all(&mut machine, &app, &ids).unwrap();
//! assert_eq!(pmcs.values.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod filter;
pub mod multiplex;
pub mod scheduler;

pub use collector::{collect_all, PmcVector};
pub use filter::{EventFilter, FilterOutcome};
pub use multiplex::Multiplexer;
pub use scheduler::{schedule, CounterGroup, ScheduleError, PROGRAMMABLE_COUNTERS};
