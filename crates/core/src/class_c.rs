//! Class C: energy correlation versus additivity under the online
//! four-PMC budget (paper Sect. 5.3, Table 7b).
//!
//! Only four PMCs fit in one application run, so an *online* model must
//! choose four. The paper builds `PA4` — the four most energy-correlated
//! PMCs *from the additive set* — and `PNA4` — the four most correlated
//! from the non-additive set — and shows that correlation only helps when
//! combined with additivity: models on `PA4` improve, models on `PNA4` do
//! not improve over the full `PNA`.

use crate::class_b::{train_family, ClassBResults, ModelRow, PA, PNA};
use crate::tables::{triple, TextTable};

/// All Class C outputs.
#[derive(Debug, Clone)]
pub struct ClassCResults {
    /// The four most correlated additive PMCs (the paper's `PA4`).
    pub pa4: Vec<String>,
    /// The four most correlated non-additive PMCs (the paper's `PNA4`).
    pub pna4: Vec<String>,
    /// Table 7b rows.
    pub models: Vec<ModelRow>,
}

impl ClassCResults {
    /// Render Table 7b.
    pub fn table7b(&self) -> String {
        let mut t = TextTable::new(
            "Table 7b. Class C prediction errors (four-PMC sets)",
            &["Model", "PMCs", "errors (min, avg, max) %"],
        );
        for row in &self.models {
            t.row(vec![
                row.model.clone(),
                row.pmc_set.clone(),
                triple(&row.errors),
            ]);
        }
        t.render()
    }
}

/// Select the `k` most |correlated| names from `pool` using the
/// correlations measured in Class B.
fn top_correlated(class_b: &ClassBResults, pool: &[&str], k: usize) -> Vec<String> {
    let mut ranked: Vec<&str> = pool.to_vec();
    ranked.sort_by(|a, b| {
        class_b
            .correlation_of(b)
            .abs()
            .partial_cmp(&class_b.correlation_of(a).abs())
            .expect("correlations are finite")
    });
    ranked.into_iter().take(k).map(|s| s.to_string()).collect()
}

/// Run Class C on top of completed Class B results (the paper reuses the
/// Class B training and test datasets).
///
/// `nn_epochs`, `rf_trees`, and `seed` should match the Class B run for a
/// like-for-like comparison.
pub fn run_class_c(
    class_b: &ClassBResults,
    nn_epochs: usize,
    rf_trees: usize,
    seed: u64,
) -> ClassCResults {
    let pa4 = top_correlated(class_b, &PA, 4);
    let pna4 = top_correlated(class_b, &PNA, 4);
    let pa4_refs: Vec<&str> = pa4.iter().map(String::as_str).collect();
    let pna4_refs: Vec<&str> = pna4.iter().map(String::as_str).collect();

    let mut models = Vec::with_capacity(6);
    models.extend(train_family(
        "PA4",
        "A4",
        &pa4_refs,
        &class_b.train,
        &class_b.test,
        nn_epochs,
        rf_trees,
        seed,
    ));
    models.extend(train_family(
        "PNA4",
        "NA4",
        &pna4_refs,
        &class_b.train,
        &class_b.test,
        nn_epochs,
        rf_trees,
        seed,
    ));
    models.sort_by_key(|r| {
        let family = match &r.model[..2] {
            "LR" => 0,
            "RF" => 1,
            _ => 2,
        };
        (family, r.model.contains("NA") as u8)
    });

    ClassCResults { pa4, pna4, models }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_additivity::AdditivityReport;
    use pmca_mlkit::Dataset;

    fn fake_class_b() -> ClassBResults {
        // A miniature Class B results object with hand-set correlations
        // and a linear dataset over all 18 features.
        let names: Vec<String> = PA.iter().chain(PNA.iter()).map(|s| s.to_string()).collect();
        let mut ds = Dataset::new(names.clone());
        for i in 1..40 {
            let x = i as f64;
            let row: Vec<f64> = (0..18).map(|j| x * (j + 1) as f64).collect();
            ds.push(format!("p{i}"), row, 10.0 * x).unwrap();
        }
        let (train, test) = ds.split_exact(8).unwrap();
        let correlations: Vec<(String, f64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), 1.0 - i as f64 * 0.05))
            .collect();
        ClassBResults {
            additivity: AdditivityReport::new(vec![], 5.0),
            correlations,
            models: vec![],
            train,
            test,
        }
    }

    #[test]
    fn selects_four_from_each_pool() {
        let b = fake_class_b();
        let c = run_class_c(&b, 30, 10, 1);
        assert_eq!(c.pa4.len(), 4);
        assert_eq!(c.pna4.len(), 4);
        for name in &c.pa4 {
            assert!(PA.contains(&name.as_str()));
        }
        for name in &c.pna4 {
            assert!(PNA.contains(&name.as_str()));
        }
    }

    #[test]
    fn selection_is_by_descending_correlation() {
        let b = fake_class_b();
        let c = run_class_c(&b, 30, 10, 1);
        // Correlations decrease with index in the fake, so PA4 = PA[0..4].
        assert_eq!(
            c.pa4,
            PA[..4].iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(
            c.pna4,
            PNA[..4].iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn produces_six_models_in_paper_order() {
        let b = fake_class_b();
        let c = run_class_c(&b, 30, 10, 1);
        let names: Vec<&str> = c.models.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(
            names,
            vec!["LR-A4", "LR-NA4", "RF-A4", "RF-NA4", "NN-A4", "NN-NA4"]
        );
    }

    #[test]
    fn table7b_mentions_every_model() {
        let b = fake_class_b();
        let c = run_class_c(&b, 30, 10, 1);
        let t = c.table7b();
        for m in ["LR-A4", "RF-NA4", "NN-A4"] {
            assert!(t.contains(m), "missing {m}:\n{t}");
        }
    }
}
