//! Class B: application-specific energy predictive models (paper
//! Sect. 5.2, Tables 6 and 7a).
//!
//! On the single-socket Skylake platform, DGEMM and FFT are the only
//! applications. The additivity test over 50 base and 30 compound runs
//! identifies nine PMCs that are additive for *both* kernels (`PA`,
//! X₁…X₉ of Table 6) and nine non-additive PMCs drawn from the energy-
//! modelling literature (`PNA`, Y₁…Y₉). Models trained on `PA` versus
//! `PNA` over an 801-point dataset (651 train / 150 test) give Table 7a.

use crate::measure::build_dataset;
use crate::tables::{triple, TextTable};
use pmca_additivity::{AdditivityChecker, AdditivityReport, AdditivityTest, CompoundCase};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::forest::ForestParams;
use pmca_mlkit::nn::NnParams;
use pmca_mlkit::tree::TreeParams;
use pmca_mlkit::{Dataset, LinearRegression, NeuralNet, PredictionErrors, RandomForest, Regressor};
use pmca_powermeter::{HclWattsUp, Methodology};
use pmca_stats::correlation::pearson;
use pmca_workloads::suite::{class_b_compound_pairs, class_b_regression_suite};

/// The paper's nine *additive* Skylake PMCs (Table 6, X₁…X₉).
pub const PA: [&str; 9] = [
    "UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_EXECUTED_CORE",
    "UOPS_DISPATCHED_PORT_PORT_4",
    "IDQ_DSB_CYCLES_6_UOPS",
    "IDQ_ALL_DSB_CYCLES_5_UOPS",
    "IDQ_ALL_CYCLES_6_UOPS",
    "MEM_LOAD_RETIRED_L3_MISS",
];

/// The paper's nine *non-additive* Skylake PMCs used in the literature
/// (Table 6, Y₁…Y₉).
pub const PNA: [&str; 9] = [
    "ICACHE_64B_IFTAG_MISS",
    "CPU_CLOCK_THREAD_UNHALTED",
    "BR_MISP_RETIRED_ALL_BRANCHES",
    "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS",
    "FRONTEND_RETIRED_L2_MISS",
    "ITLB_MISSES_STLB_HIT",
    "L2_TRANS_CODE_RD",
    "IDQ_MS_UOPS",
    "ARITH_DIVIDER_COUNT",
];

/// Configuration of a Class B run.
#[derive(Debug, Clone, Copy)]
pub struct ClassBConfig {
    /// Master seed.
    pub seed: u64,
    /// Compound applications for the additivity test (paper: 30).
    pub n_compounds: usize,
    /// Runs per application inside the additivity test.
    pub additivity_runs: usize,
    /// Subsampling stride over the 801-point regression suite (1 = full).
    pub regression_stride: usize,
    /// Collection sweeps averaged per dataset point.
    pub pmc_repeats: usize,
    /// Energy measurement methodology.
    pub methodology: Methodology,
    /// Neural-network training epochs.
    pub nn_epochs: usize,
    /// Random-forest size.
    pub rf_trees: usize,
}

impl ClassBConfig {
    /// The paper's experimental scale: full 801-point dataset.
    pub fn paper() -> Self {
        ClassBConfig {
            seed: 0xC1A55B,
            n_compounds: 30,
            additivity_runs: 4,
            regression_stride: 1,
            pmc_repeats: 1,
            methodology: Methodology::quick(),
            nn_epochs: 400,
            rf_trees: 100,
        }
    }

    /// A seconds-scale configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        ClassBConfig {
            n_compounds: 6,
            additivity_runs: 2,
            regression_stride: 10,
            nn_epochs: 80,
            rf_trees: 25,
            ..ClassBConfig::paper()
        }
    }
}

/// One model row of Table 7a/7b.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model name (`LR-A`, `RF-NA`, `NN-A4`, …).
    pub model: String,
    /// The PMC set label (`PA`, `PNA`, `PA4`, `PNA4`).
    pub pmc_set: String,
    /// (min, avg, max) percentage prediction errors on the test split.
    pub errors: PredictionErrors,
}

/// All Class B outputs. The dataset splits are retained so Class C can
/// reuse them, as the paper does ("the training and test datasets are the
/// same as those for Class B").
#[derive(Debug, Clone)]
pub struct ClassBResults {
    /// Additivity report over `PA ∪ PNA` on the DGEMM/FFT compound suite.
    pub additivity: AdditivityReport,
    /// Pearson correlation of each of the 18 PMCs with dynamic energy over
    /// the full regression dataset (Table 6).
    pub correlations: Vec<(String, f64)>,
    /// Table 7a rows.
    pub models: Vec<ModelRow>,
    /// The training split.
    pub train: Dataset,
    /// The test split.
    pub test: Dataset,
}

impl ClassBResults {
    /// Measured correlation of one PMC.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not among the 18 Class B PMCs.
    pub fn correlation_of(&self, name: &str) -> f64 {
        self.correlations
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} is not a Class B PMC"))
            .1
    }

    /// Render Table 6: the additive and non-additive PMCs with their
    /// energy correlations and measured additivity errors.
    pub fn table6(&self) -> String {
        let mut t = TextTable::new(
            "Table 6. Additive and non-additive PMCs with energy correlation",
            &["set", "PMC", "correlation", "additivity err (%)"],
        );
        for (set, names) in [("PA", &PA[..]), ("PNA", &PNA[..])] {
            for name in names {
                let corr = self.correlation_of(name);
                let err = self
                    .additivity
                    .entries()
                    .iter()
                    .find(|e| e.name == *name)
                    .map(|e| e.max_error_pct)
                    .unwrap_or(f64::NAN);
                t.row(vec![
                    set.into(),
                    name.to_string(),
                    format!("{corr:.3}"),
                    format!("{err:.2}"),
                ]);
            }
        }
        t.render()
    }

    /// Render Table 7a: model accuracies on the PA and PNA sets.
    pub fn table7a(&self) -> String {
        let mut t = TextTable::new(
            "Table 7a. Class B prediction errors (nine-PMC sets)",
            &["Model", "PMCs", "errors (min, avg, max) %"],
        );
        for row in &self.models {
            t.row(vec![
                row.model.clone(),
                row.pmc_set.clone(),
                triple(&row.errors),
            ]);
        }
        t.render()
    }
}

/// Train the three model families on one feature set and evaluate on the
/// test split. Shared by Class B and Class C.
#[allow(clippy::too_many_arguments)] // mirrors the experiment's independent knobs
pub(crate) fn train_family(
    set_label: &str,
    suffix: &str,
    features: &[&str],
    train: &Dataset,
    test: &Dataset,
    nn_epochs: usize,
    rf_trees: usize,
    seed: u64,
) -> Vec<ModelRow> {
    let train_k = train
        .select(features)
        .expect("features exist in the dataset");
    let test_k = test
        .select(features)
        .expect("features exist in the dataset");
    let mut rows = Vec::with_capacity(3);

    let mut lr = LinearRegression::paper_constrained();
    lr.fit(train_k.rows(), train_k.targets())
        .expect("non-empty training set");
    rows.push(ModelRow {
        model: format!("LR-{suffix}"),
        pmc_set: set_label.into(),
        errors: PredictionErrors::evaluate(&lr, test_k.rows(), test_k.targets()),
    });

    let mut rf = RandomForest::new(
        ForestParams {
            n_trees: rf_trees,
            tree: TreeParams::default(),
            sample_fraction: 1.0,
        },
        seed ^ 0xF0,
    );
    rf.fit(train_k.rows(), train_k.targets())
        .expect("non-empty training set");
    rows.push(ModelRow {
        model: format!("RF-{suffix}"),
        pmc_set: set_label.into(),
        errors: PredictionErrors::evaluate(&rf, test_k.rows(), test_k.targets()),
    });

    let mut nn = NeuralNet::new(
        NnParams {
            epochs: nn_epochs,
            ..NnParams::default()
        },
        seed ^ 0x99,
    );
    nn.fit(train_k.rows(), train_k.targets())
        .expect("non-empty training set");
    rows.push(ModelRow {
        model: format!("NN-{suffix}"),
        pmc_set: set_label.into(),
        errors: PredictionErrors::evaluate(&nn, test_k.rows(), test_k.targets()),
    });

    rows
}

/// Run the full Class B experiment.
///
/// # Panics
///
/// Panics only on internal inconsistencies (catalog lookups, scheduling of
/// the 18 Table 6 events) — unreachable with the built-in catalogs.
pub fn run_class_b(config: &ClassBConfig) -> ClassBResults {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), config.seed);
    let mut meter = HclWattsUp::with_methodology(&machine, config.seed, config.methodology);
    let all_names: Vec<&str> = PA.iter().chain(PNA.iter()).copied().collect();
    let events = machine
        .catalog()
        .ids(&all_names)
        .expect("Table 6 events exist in the Skylake catalog");

    // Additivity over the DGEMM/FFT compound suite.
    let cases: Vec<CompoundCase> = class_b_compound_pairs(config.n_compounds, config.seed)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let test_cfg = AdditivityTest {
        runs: config.additivity_runs,
        ..AdditivityTest::default()
    };
    let additivity = AdditivityChecker::new(test_cfg)
        .check(&mut machine, &events, &cases)
        .expect("Table 6 events always schedule");

    // The 801-point regression dataset (optionally strided down).
    let suite = class_b_regression_suite();
    let apps: Vec<&dyn Application> = suite
        .iter()
        .step_by(config.regression_stride.max(1))
        .map(|a| a.as_ref())
        .collect();
    let dataset = build_dataset(&mut machine, &mut meter, &apps, &events, config.pmc_repeats)
        .expect("collection of Table 6 events cannot fail");

    // Table 6 correlations over the full dataset.
    let correlations: Vec<(String, f64)> = dataset
        .feature_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let corr = pearson(&dataset.column(i), dataset.targets()).unwrap_or(0.0);
            (name.clone(), corr)
        })
        .collect();

    // 651/150 split at paper scale, proportionally otherwise.
    let test_count = ((dataset.len() as f64) * 150.0 / 801.0).round().max(1.0) as usize;
    let (train, test) = dataset
        .split_exact(test_count.min(dataset.len() - 1))
        .expect("split parameters are in range");

    let mut models = Vec::with_capacity(6);
    models.extend(train_family(
        "PA",
        "A",
        &PA,
        &train,
        &test,
        config.nn_epochs,
        config.rf_trees,
        config.seed,
    ));
    models.extend(train_family(
        "PNA",
        "NA",
        &PNA,
        &train,
        &test,
        config.nn_epochs,
        config.rf_trees,
        config.seed,
    ));
    // Paper ordering: LR-A, LR-NA, RF-A, RF-NA, NN-A, NN-NA.
    models.sort_by_key(|r| {
        let family = match &r.model[..2] {
            "LR" => 0,
            "RF" => 1,
            _ => 2,
        };
        (family, r.model.ends_with("NA") as u8)
    });

    ClassBResults {
        additivity,
        correlations,
        models,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_and_pna_are_disjoint_nines() {
        assert_eq!(PA.len(), 9);
        assert_eq!(PNA.len(), 9);
        for x in PA {
            assert!(!PNA.contains(&x), "{x} in both sets");
        }
    }

    #[test]
    fn paper_config_uses_full_suite() {
        let c = ClassBConfig::paper();
        assert_eq!(c.regression_stride, 1);
        assert_eq!(c.n_compounds, 30);
    }

    #[test]
    fn smoke_config_is_strided() {
        assert!(ClassBConfig::smoke().regression_stride > 1);
    }
}
