//! SLOPE-PMC-RS: additivity-based PMC selection for energy predictive
//! models of multicore CPUs.
//!
//! This crate is the top of the reproduction stack for Shahid et al.,
//! *"Improving the Accuracy of Energy Predictive Models for Multicore CPUs
//! Using Additivity of Performance Monitoring Counters"* (PaCT 2019). It
//! combines the substrate crates — the platform simulator
//! (`pmca-cpusim`), workload models (`pmca-workloads`), power metering
//! (`pmca-powermeter`), PMC collection (`pmca-pmctools`), regression
//! models (`pmca-mlkit`), and the additivity test (`pmca-additivity`) —
//! into:
//!
//! * [`selection`] — PMC selection strategies: plain correlation (the
//!   state-of-the-art baseline the paper argues against), additivity
//!   ranking, additivity-filtered correlation (the paper's recipe), and a
//!   PCA baseline;
//! * [`measure`] — dataset construction: run applications, measure dynamic
//!   energy through the simulated WattsUp, collect PMCs over multiple runs;
//! * [`class_a`] / [`class_b`] / [`class_c`] — the paper's three
//!   experiment classes, regenerating Tables 2–5, 6–7a, and 7b;
//! * [`tables`] — plain-text table rendering in the paper's layout.
//!
//! # Examples
//!
//! ```no_run
//! use pmca_core::class_a::{run_class_a, ClassAConfig};
//!
//! let results = run_class_a(&ClassAConfig::paper());
//! println!("{}", results.table2());
//! println!("{}", results.table3());
//! ```
//!
//! (Use [`class_a::ClassAConfig::smoke`] for a seconds-scale run.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class_a;
pub mod class_b;
pub mod class_c;
pub mod measure;
pub mod online;
pub mod selection;
pub mod survey;
pub mod tables;
pub mod weighting;

pub use class_a::{run_class_a, ClassAConfig, ClassAResults};
pub use class_b::{run_class_b, ClassBConfig, ClassBResults};
pub use class_c::{run_class_c, ClassCResults};
pub use online::OnlineModel;
pub use selection::SelectionStrategy;
