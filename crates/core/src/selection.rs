//! PMC selection strategies.
//!
//! The paper's taxonomy (Sect. 1) of PMC-selection techniques, implemented
//! head to head:
//!
//! * [`SelectionStrategy::Correlation`] — rank by |Pearson correlation|
//!   with dynamic energy (the mainstream baseline the paper critiques);
//! * [`SelectionStrategy::Additivity`] — rank by additivity-test error
//!   ascending (most additive first);
//! * [`SelectionStrategy::AdditiveThenCorrelation`] — the paper's Class C
//!   recipe: restrict to (most) additive events, then rank by correlation;
//! * [`SelectionStrategy::Pca`] — rank by absolute loading on the first
//!   principal component (a statistical baseline from related work).

use pmca_additivity::AdditivityReport;
use pmca_mlkit::Dataset;
use pmca_stats::correlation::rank_by_correlation;
use pmca_stats::matrix::Matrix;
use pmca_stats::pca::Pca;

/// A PMC selection strategy producing `k` feature names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Most |correlated| with the target first.
    Correlation {
        /// Number of PMCs to select.
        k: usize,
    },
    /// Most additive (smallest additivity-test error) first.
    Additivity {
        /// Number of PMCs to select.
        k: usize,
    },
    /// Among the `pool` most additive events, pick the `k` most correlated
    /// — the construction of the paper's PA4 set.
    AdditiveThenCorrelation {
        /// Number of PMCs to select.
        k: usize,
        /// Size of the additive pool to pre-select.
        pool: usize,
    },
    /// Largest absolute loading on the first principal component first.
    Pca {
        /// Number of PMCs to select.
        k: usize,
    },
}

/// Errors from selection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SelectionError {
    /// The strategy needs an additivity report but none was supplied.
    MissingAdditivityReport,
    /// The dataset's features don't cover the additivity report's events.
    FeatureMismatch(String),
    /// PCA failed (degenerate dataset).
    PcaFailed,
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::MissingAdditivityReport => {
                write!(f, "strategy requires an additivity report")
            }
            SelectionError::FeatureMismatch(name) => {
                write!(f, "additivity report lacks feature {name}")
            }
            SelectionError::PcaFailed => write!(f, "PCA decomposition failed"),
        }
    }
}

impl std::error::Error for SelectionError {}

/// Apply a strategy to a dataset (features = PMC counts, target = dynamic
/// energy) and, for additivity-based strategies, an [`AdditivityReport`]
/// covering the dataset's features. Returns selected feature names, best
/// first, truncated to the available feature count.
///
/// # Errors
///
/// Returns [`SelectionError`] when required inputs are missing or
/// inconsistent.
pub fn select_pmcs(
    strategy: SelectionStrategy,
    dataset: &Dataset,
    additivity: Option<&AdditivityReport>,
) -> Result<Vec<String>, SelectionError> {
    let names = dataset.feature_names();
    match strategy {
        SelectionStrategy::Correlation { k } => {
            let columns: Vec<Vec<f64>> = (0..names.len()).map(|i| dataset.column(i)).collect();
            let ranked = rank_by_correlation(&columns, dataset.targets());
            Ok(ranked
                .into_iter()
                .take(k)
                .map(|(i, _)| names[i].clone())
                .collect())
        }
        SelectionStrategy::Additivity { k } => {
            let report = additivity.ok_or(SelectionError::MissingAdditivityReport)?;
            let ranked = ranked_additivity_names(report, names)?;
            Ok(ranked.into_iter().take(k).collect())
        }
        SelectionStrategy::AdditiveThenCorrelation { k, pool } => {
            let report = additivity.ok_or(SelectionError::MissingAdditivityReport)?;
            let pool_names: Vec<String> = ranked_additivity_names(report, names)?
                .into_iter()
                .take(pool)
                .collect();
            let columns: Vec<Vec<f64>> = pool_names
                .iter()
                .map(|n| {
                    let idx = names
                        .iter()
                        .position(|f| f == n)
                        .expect("pool drawn from names");
                    dataset.column(idx)
                })
                .collect();
            let ranked = rank_by_correlation(&columns, dataset.targets());
            Ok(ranked
                .into_iter()
                .take(k)
                .map(|(i, _)| pool_names[i].clone())
                .collect())
        }
        SelectionStrategy::Pca { k } => {
            let matrix =
                Matrix::from_rows(dataset.rows()).map_err(|_| SelectionError::PcaFailed)?;
            let pca = Pca::fit(&matrix, true).map_err(|_| SelectionError::PcaFailed)?;
            let loadings = pca.leading_loadings();
            let mut order: Vec<usize> = (0..names.len()).collect();
            order.sort_by(|&a, &b| loadings[b].partial_cmp(&loadings[a]).expect("NaN loading"));
            Ok(order
                .into_iter()
                .take(k)
                .map(|i| names[i].clone())
                .collect())
        }
    }
}

/// Dataset feature names ranked most-additive-first according to a report.
fn ranked_additivity_names(
    report: &AdditivityReport,
    names: &[String],
) -> Result<Vec<String>, SelectionError> {
    for name in names {
        if !report.entries().iter().any(|e| &e.name == name) {
            return Err(SelectionError::FeatureMismatch(name.clone()));
        }
    }
    Ok(report
        .ranked()
        .into_iter()
        .filter(|e| names.contains(&e.name))
        .map(|e| e.name.clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_additivity::{AdditivityReport, EventAdditivity, Verdict};
    use pmca_cpusim::events::EventId;

    fn dataset() -> Dataset {
        // f0 tracks the target perfectly, f1 weakly, f2 is noise.
        let mut d = Dataset::new(vec!["f0".into(), "f1".into(), "f2".into()]);
        for i in 0..30 {
            let x = i as f64;
            let weak = x + if i % 2 == 0 { 6.0 } else { -6.0 };
            let noise = if i % 3 == 0 { 10.0 } else { 1.0 };
            d.push(format!("p{i}"), vec![x, weak, noise], 2.0 * x)
                .unwrap();
        }
        d
    }

    fn report(errors: &[(&str, f64)]) -> AdditivityReport {
        let entries = errors
            .iter()
            .enumerate()
            .map(|(i, &(name, err))| EventAdditivity {
                id: EventId(i),
                name: name.into(),
                reproducible: true,
                max_error_pct: err,
                worst_compound: String::new(),
                verdict: if err <= 5.0 {
                    Verdict::Additive
                } else {
                    Verdict::NonAdditive
                },
            })
            .collect();
        AdditivityReport::new(entries, 5.0)
    }

    #[test]
    fn correlation_strategy_picks_the_strong_feature_first() {
        let sel = select_pmcs(SelectionStrategy::Correlation { k: 2 }, &dataset(), None).unwrap();
        assert_eq!(sel[0], "f0");
    }

    #[test]
    fn additivity_strategy_follows_report_ranking() {
        let r = report(&[("f0", 40.0), ("f1", 1.0), ("f2", 10.0)]);
        let sel =
            select_pmcs(SelectionStrategy::Additivity { k: 2 }, &dataset(), Some(&r)).unwrap();
        assert_eq!(sel, vec!["f1".to_string(), "f2".to_string()]);
    }

    #[test]
    fn additivity_strategy_requires_report() {
        assert_eq!(
            select_pmcs(SelectionStrategy::Additivity { k: 1 }, &dataset(), None),
            Err(SelectionError::MissingAdditivityReport)
        );
    }

    #[test]
    fn combined_strategy_filters_then_ranks() {
        // f0 is the best-correlated but least additive; with a pool of 2
        // (f1, f2), correlation picks f1.
        let r = report(&[("f0", 40.0), ("f1", 1.0), ("f2", 2.0)]);
        let sel = select_pmcs(
            SelectionStrategy::AdditiveThenCorrelation { k: 1, pool: 2 },
            &dataset(),
            Some(&r),
        )
        .unwrap();
        assert_eq!(sel, vec!["f1".to_string()]);
    }

    #[test]
    fn report_missing_feature_is_an_error() {
        let r = report(&[("f0", 1.0)]);
        let err = select_pmcs(SelectionStrategy::Additivity { k: 1 }, &dataset(), Some(&r));
        assert!(matches!(err, Err(SelectionError::FeatureMismatch(_))));
    }

    #[test]
    fn pca_strategy_returns_k_features() {
        let sel = select_pmcs(SelectionStrategy::Pca { k: 2 }, &dataset(), None).unwrap();
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn k_larger_than_features_truncates() {
        let sel = select_pmcs(SelectionStrategy::Correlation { k: 99 }, &dataset(), None).unwrap();
        assert_eq!(sel.len(), 3);
    }
}
