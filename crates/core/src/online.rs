//! Deployable online energy models.
//!
//! The point of the paper's Class C experiments is an *online* model: one
//! whose entire PMC set fits in a **single application run** (≤ 4
//! programmable counters under the PMU's constraints), so energy can be
//! estimated live without re-running the application. [`OnlineModel`]
//! packages that: it validates single-run schedulability at construction,
//! trains the paper-constrained linear model, and estimates a running
//! application's dynamic energy from one collection pass.

use crate::measure::build_dataset;
use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_mlkit::{LinearRegression, Regressor};
use pmca_pmctools::collector::collect_all;
use pmca_pmctools::scheduler::schedule;
use pmca_powermeter::HclWattsUp;
use std::error::Error;
use std::fmt;

/// Why an online model could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OnlineModelError {
    /// An event name is not in the machine's catalog.
    UnknownEvent(String),
    /// The chosen PMCs cannot be measured together in one run.
    NotSingleRun {
        /// Number of runs the schedule actually needs.
        runs_needed: usize,
    },
    /// Training failed (degenerate dataset).
    TrainingFailed(String),
}

impl fmt::Display for OnlineModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineModelError::UnknownEvent(name) => write!(f, "unknown event {name}"),
            OnlineModelError::NotSingleRun { runs_needed } => {
                write!(
                    f,
                    "PMC set needs {runs_needed} runs; an online model needs exactly 1"
                )
            }
            OnlineModelError::TrainingFailed(detail) => write!(f, "training failed: {detail}"),
        }
    }
}

impl Error for OnlineModelError {}

/// An online energy model: ≤ 4 single-run-schedulable PMCs plus a trained
/// paper-constrained linear model.
#[derive(Debug, Clone)]
pub struct OnlineModel {
    event_names: Vec<String>,
    events: Vec<EventId>,
    model: LinearRegression,
    residual_std: f64,
    training_rows: usize,
    /// Per-row `(predicted, measured)` pairs from training — the holdout
    /// feed for calibration monitoring. Empty for revived models.
    fit: Vec<(f64, f64)>,
}

/// The persistable state of an [`OnlineModel`] — everything needed to
/// revive it on a machine with the same catalog, without retraining.
/// Produced by [`OnlineModel::to_spec`], consumed by
/// [`OnlineModel::from_spec`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineModelSpec {
    /// PMC names, in model-feature order.
    pub pmc_names: Vec<String>,
    /// One non-negative coefficient per PMC.
    pub coefficients: Vec<f64>,
    /// Standard deviation of the training residuals, joules (the basis of
    /// served prediction intervals).
    pub residual_std: f64,
    /// Number of training observations the residuals were computed from.
    pub training_rows: usize,
}

impl OnlineModel {
    /// Train an online model on `training_apps`: validates that
    /// `pmc_names` fit one run on `machine`'s PMU, measures energy through
    /// `meter`, and fits the constrained linear model.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineModelError`] when the PMC set is unknown, not
    /// single-run schedulable, or untrainable.
    pub fn train(
        machine: &mut Machine,
        meter: &mut HclWattsUp,
        pmc_names: &[&str],
        training_apps: &[&dyn Application],
    ) -> Result<Self, OnlineModelError> {
        let events = machine
            .catalog()
            .ids(pmc_names)
            .map_err(|name| OnlineModelError::UnknownEvent(name.to_string()))?;
        let groups = schedule(machine.catalog(), &events)
            .map_err(|e| OnlineModelError::TrainingFailed(e.to_string()))?;
        if groups.len() > 1 {
            return Err(OnlineModelError::NotSingleRun {
                runs_needed: groups.len(),
            });
        }
        let dataset = build_dataset(machine, meter, training_apps, &events, 1)
            .map_err(|e| OnlineModelError::TrainingFailed(e.to_string()))?;
        let mut model = LinearRegression::paper_constrained();
        model
            .fit(dataset.rows(), dataset.targets())
            .map_err(|e| OnlineModelError::TrainingFailed(e.to_string()))?;
        let fit = pmca_mlkit::metrics::prediction_pairs(&model, dataset.rows(), dataset.targets());
        let n = fit.len() as f64;
        let residual_std = (fit
            .iter()
            .map(|(predicted, target)| {
                let r = predicted - target;
                r * r
            })
            .sum::<f64>()
            / n)
            .sqrt();
        Ok(OnlineModel {
            event_names: pmc_names.iter().map(|s| s.to_string()).collect(),
            events,
            model,
            residual_std,
            training_rows: fit.len(),
            fit,
        })
    }

    /// Export the model's persistable state.
    pub fn to_spec(&self) -> OnlineModelSpec {
        OnlineModelSpec {
            pmc_names: self.event_names.clone(),
            coefficients: self.model.coefficients().to_vec(),
            residual_std: self.residual_std,
            training_rows: self.training_rows,
        }
    }

    /// Revive a model from its persisted state, re-validating the PMC set
    /// against `machine`'s catalog and PMU constraints.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineModelError`] when an event is unknown on this
    /// machine, the set is no longer single-run schedulable, or the
    /// coefficient count disagrees with the PMC count.
    pub fn from_spec(machine: &Machine, spec: &OnlineModelSpec) -> Result<Self, OnlineModelError> {
        let names: Vec<&str> = spec.pmc_names.iter().map(String::as_str).collect();
        let events = machine
            .catalog()
            .ids(&names)
            .map_err(|name| OnlineModelError::UnknownEvent(name.to_string()))?;
        let groups = schedule(machine.catalog(), &events)
            .map_err(|e| OnlineModelError::TrainingFailed(e.to_string()))?;
        if groups.len() > 1 {
            return Err(OnlineModelError::NotSingleRun {
                runs_needed: groups.len(),
            });
        }
        if spec.coefficients.len() != spec.pmc_names.len() {
            return Err(OnlineModelError::TrainingFailed(format!(
                "{} coefficients for {} PMCs",
                spec.coefficients.len(),
                spec.pmc_names.len()
            )));
        }
        Ok(OnlineModel {
            event_names: spec.pmc_names.clone(),
            events,
            model: LinearRegression::from_coefficients(spec.coefficients.clone(), 0.0),
            residual_std: spec.residual_std,
            training_rows: spec.training_rows,
            fit: Vec::new(),
        })
    }

    /// Estimate dynamic energy, joules, directly from already-collected
    /// PMC counts in [`OnlineModel::pmc_names`] order — the serving path,
    /// where the counts arrive over the wire instead of from a local run.
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have one entry per PMC.
    pub fn estimate_from_counts(&self, counts: &[f64]) -> f64 {
        assert_eq!(
            counts.len(),
            self.event_names.len(),
            "one count per PMC required"
        );
        self.model.predict_one(counts).max(0.0)
    }

    /// Standard deviation of the training residuals, joules.
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Number of training observations behind [`OnlineModel::residual_std`].
    pub fn training_rows(&self) -> usize {
        self.training_rows
    }

    /// Per-row `(predicted, measured)` pairs from training — what a
    /// calibration tracker observes as the TRAIN-time holdout. Empty
    /// for models revived with [`OnlineModel::from_spec`].
    pub fn training_fit(&self) -> &[(f64, f64)] {
        &self.fit
    }

    /// The PMCs the model reads.
    pub fn pmc_names(&self) -> &[String] {
        &self.event_names
    }

    /// Estimate an application's dynamic energy, joules, from **one** run
    /// — the online deployment path (no power meter involved).
    ///
    /// # Panics
    ///
    /// Panics only on internal inconsistency (the event set was validated
    /// at construction).
    pub fn estimate(&self, machine: &mut Machine, app: &dyn Application) -> f64 {
        let before = machine.runs_executed();
        let pmcs = collect_all(machine, app, &self.events)
            .expect("event set validated single-run at construction");
        debug_assert_eq!(
            machine.runs_executed() - before,
            1,
            "online estimate must cost one run"
        );
        self.model
            .predict_one(&pmcs.in_order(&self.events))
            .max(0.0)
    }

    /// The fitted coefficients, one per PMC.
    pub fn coefficients(&self) -> &[f64] {
        self.model.coefficients()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::PlatformSpec;
    use pmca_powermeter::Methodology;
    use pmca_workloads::{Dgemm, Fft2d};

    fn setup() -> (Machine, HclWattsUp) {
        let machine = Machine::new(PlatformSpec::intel_skylake(), 31);
        let meter = HclWattsUp::with_methodology(&machine, 31, Methodology::quick());
        (machine, meter)
    }

    fn training_apps() -> Vec<Box<dyn Application>> {
        let mut apps: Vec<Box<dyn Application>> = Vec::new();
        for i in 0..14 {
            apps.push(Box::new(Dgemm::new(7_000 + 1_700 * i)));
            apps.push(Box::new(Fft2d::new(23_000 + 1_100 * i)));
        }
        apps
    }

    const GOOD_SET: [&str; 4] = [
        "UOPS_EXECUTED_CORE",
        "FP_ARITH_INST_RETIRED_DOUBLE",
        "MEM_INST_RETIRED_ALL_STORES",
        "UOPS_DISPATCHED_PORT_PORT_4",
    ];

    #[test]
    fn trains_and_estimates_within_tolerance() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let model = OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap();

        // Unseen application.
        let unseen = Dgemm::new(13_333);
        let estimate = model.estimate(&mut machine, &unseen);
        let truth = meter
            .measure_dynamic_energy(&mut machine, &unseen)
            .mean_joules;
        let rel = (estimate - truth).abs() / truth;
        assert!(
            rel < 0.45,
            "estimate {estimate} vs truth {truth} ({rel:.2})"
        );
    }

    #[test]
    fn estimate_costs_exactly_one_run() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let model = OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap();
        let before = machine.runs_executed();
        let _ = model.estimate(&mut machine, &Fft2d::new(25_000));
        assert_eq!(machine.runs_executed() - before, 1);
    }

    #[test]
    fn rejects_sets_that_need_multiple_runs() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        // The divider is solo-only: together with three others it cannot
        // fit one run.
        let bad = [
            "ARITH_DIVIDER_COUNT",
            "UOPS_EXECUTED_CORE",
            "MEM_INST_RETIRED_ALL_STORES",
        ];
        let err = OnlineModel::train(&mut machine, &mut meter, &bad, &refs).unwrap_err();
        assert!(
            matches!(err, OnlineModelError::NotSingleRun { runs_needed: 2 }),
            "{err}"
        );
    }

    #[test]
    fn rejects_unknown_events() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let err =
            OnlineModel::train(&mut machine, &mut meter, &["NOT_AN_EVENT"], &refs).unwrap_err();
        assert_eq!(err, OnlineModelError::UnknownEvent("NOT_AN_EVENT".into()));
    }

    #[test]
    fn spec_round_trip_preserves_the_model() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let model = OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap();
        let spec = model.to_spec();
        assert!(spec.residual_std >= 0.0 && spec.residual_std.is_finite());
        assert_eq!(spec.training_rows, refs.len());
        let revived = OnlineModel::from_spec(&machine, &spec).unwrap();
        assert_eq!(revived.to_spec(), spec);
        let counts = [1.1e11, 2.3e10, 4.5e9, 4.4e9];
        assert_eq!(
            model.estimate_from_counts(&counts),
            revived.estimate_from_counts(&counts)
        );
    }

    #[test]
    fn from_spec_revalidates_the_event_set() {
        let (machine, _) = setup();
        let unknown = OnlineModelSpec {
            pmc_names: vec!["NOT_AN_EVENT".into()],
            coefficients: vec![1.0],
            residual_std: 0.0,
            training_rows: 10,
        };
        assert!(matches!(
            OnlineModel::from_spec(&machine, &unknown),
            Err(OnlineModelError::UnknownEvent(_))
        ));
        let multi_run = OnlineModelSpec {
            pmc_names: vec!["ARITH_DIVIDER_COUNT".into(), "UOPS_EXECUTED_CORE".into()],
            coefficients: vec![1.0, 1.0],
            residual_std: 0.0,
            training_rows: 10,
        };
        assert!(matches!(
            OnlineModel::from_spec(&machine, &multi_run),
            Err(OnlineModelError::NotSingleRun { .. })
        ));
        let mismatched = OnlineModelSpec {
            pmc_names: vec!["UOPS_EXECUTED_CORE".into()],
            coefficients: vec![1.0, 2.0],
            residual_std: 0.0,
            training_rows: 10,
        };
        assert!(matches!(
            OnlineModel::from_spec(&machine, &mismatched),
            Err(OnlineModelError::TrainingFailed(_))
        ));
    }

    #[test]
    fn estimate_from_counts_matches_a_collected_estimate() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let model = OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap();
        let app = Dgemm::new(11_000);
        let events = machine.catalog().ids(&GOOD_SET).unwrap();
        let pmcs = pmca_pmctools::collector::collect_all(&mut machine, &app, &events).unwrap();
        let direct = model.estimate_from_counts(&pmcs.in_order(&events));
        assert!(direct.is_finite() && direct >= 0.0);
    }

    #[test]
    fn coefficients_are_nonnegative() {
        let (mut machine, mut meter) = setup();
        let apps = training_apps();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
        let model = OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap();
        assert!(model.coefficients().iter().all(|&c| c >= 0.0));
        assert_eq!(model.pmc_names().len(), 4);
    }
}
