//! Class A: improving the prediction accuracy of energy predictive models
//! using additivity (paper Sect. 5.1, Tables 2–5).
//!
//! On the dual-socket Haswell platform, six PMCs widely used in energy
//! models are checked for additivity over 50 compound applications
//! (Table 2); then ladders of LR, RF, and NN models are built over a
//! 277-point base-application training set and evaluated on the compound
//! test set, removing the most non-additive PMC at each rung (Tables 3–5).

use crate::measure::build_dataset;
use crate::tables::{sci, triple, TextTable};
use pmca_additivity::{AdditivityChecker, AdditivityReport, AdditivityTest, CompoundCase};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::forest::ForestParams;
use pmca_mlkit::nn::NnParams;
use pmca_mlkit::tree::TreeParams;
use pmca_mlkit::{LinearRegression, NeuralNet, PredictionErrors, RandomForest, Regressor};
use pmca_powermeter::{HclWattsUp, Methodology};
use pmca_workloads::suite::{class_a_base_suite, class_a_compound_pairs, class_a_compounds};

/// The six PMCs of the paper's Table 2 — predictors "widely used in energy
/// predictive models", in the paper's X₁…X₆ order.
pub const CLASS_A_PMCS: [&str; 6] = [
    "IDQ_MITE_UOPS",
    "IDQ_MS_UOPS",
    "ICACHE_64B_IFTAG_MISS",
    "ARITH_DIVIDER_COUNT",
    "L2_RQSTS_MISS",
    "UOPS_EXECUTED_PORT_PORT_6",
];

/// Configuration of a Class A run.
#[derive(Debug, Clone, Copy)]
pub struct ClassAConfig {
    /// Master seed for machine, suites, and models.
    pub seed: u64,
    /// Base (training) applications — the paper uses 277.
    pub n_base: usize,
    /// Compound (test) applications — the paper uses 50.
    pub n_compounds: usize,
    /// Runs per application inside the additivity test.
    pub additivity_runs: usize,
    /// Collection sweeps averaged per dataset point.
    pub pmc_repeats: usize,
    /// Energy measurement methodology.
    pub methodology: Methodology,
    /// Neural-network training epochs.
    pub nn_epochs: usize,
    /// Random-forest size.
    pub rf_trees: usize,
}

impl ClassAConfig {
    /// The paper's experimental scale.
    pub fn paper() -> Self {
        ClassAConfig {
            seed: 0xC1A55A,
            n_base: 277,
            n_compounds: 50,
            additivity_runs: 4,
            pmc_repeats: 1,
            methodology: Methodology::quick(),
            nn_epochs: 400,
            rf_trees: 100,
        }
    }

    /// A seconds-scale configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        ClassAConfig {
            n_base: 51,
            n_compounds: 10,
            additivity_runs: 2,
            nn_epochs: 80,
            rf_trees: 25,
            ..ClassAConfig::paper()
        }
    }
}

/// One rung of a model ladder (a row of Tables 3–5).
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// Model name (`LR3`, `RF1`, …).
    pub model: String,
    /// PMC names used, in the paper's original X-order.
    pub pmcs: Vec<String>,
    /// Fitted coefficients for linear models (paper Table 3), `None` for
    /// RF/NN.
    pub coefficients: Option<Vec<f64>>,
    /// (min, avg, max) percentage prediction errors on the compound test
    /// set.
    pub errors: PredictionErrors,
}

/// All Class A outputs.
#[derive(Debug, Clone)]
pub struct ClassAResults {
    /// The additivity report over the six PMCs (Table 2).
    pub additivity: AdditivityReport,
    /// Linear-regression ladder (Table 3).
    pub lr: Vec<LadderRow>,
    /// Random-forest ladder (Table 4).
    pub rf: Vec<LadderRow>,
    /// Neural-network ladder (Table 5).
    pub nn: Vec<LadderRow>,
    /// Training-set size actually used.
    pub train_points: usize,
    /// Test-set size actually used.
    pub test_points: usize,
}

impl ClassAResults {
    /// Render Table 2: selected PMCs with their additivity-test errors.
    pub fn table2(&self) -> String {
        let mut t = TextTable::new(
            "Table 2. Selected PMCs with additivity test errors (%)",
            &["PMC", "additivity test error (%)"],
        );
        for entry in self.additivity.entries() {
            t.row(vec![
                entry.name.clone(),
                format!("{:.0}", entry.max_error_pct),
            ]);
        }
        t.render()
    }

    /// Render Table 3: the LR ladder with coefficients.
    pub fn table3(&self) -> String {
        let mut t = TextTable::new(
            "Table 3. Linear models (zero intercept, non-negative coefficients)",
            &["Model", "PMCs", "Coefficients", "errors (min, avg, max) %"],
        );
        for row in &self.lr {
            let coeffs = row
                .coefficients
                .as_ref()
                .map(|cs| cs.iter().map(|&c| sci(c)).collect::<Vec<_>>().join(", "))
                .unwrap_or_default();
            t.row(vec![
                row.model.clone(),
                row.pmcs.join(","),
                coeffs,
                triple(&row.errors),
            ]);
        }
        t.render()
    }

    /// Render Table 4 (RF ladder) or Table 5 (NN ladder).
    fn ladder_table(title: &str, rows: &[LadderRow]) -> String {
        let mut t = TextTable::new(title, &["Model", "PMCs", "errors (min, avg, max) %"]);
        for row in rows {
            t.row(vec![
                row.model.clone(),
                row.pmcs.join(","),
                triple(&row.errors),
            ]);
        }
        t.render()
    }

    /// Render Table 4: the RF ladder.
    pub fn table4(&self) -> String {
        Self::ladder_table("Table 4. Random forest models", &self.rf)
    }

    /// Render Table 5: the NN ladder.
    pub fn table5(&self) -> String {
        Self::ladder_table("Table 5. Neural network models", &self.nn)
    }
}

/// Run the full Class A experiment.
///
/// # Panics
///
/// Panics if the simulated pipeline produces an internally inconsistent
/// state (catalog lookups, scheduling of six unconstrained events) — all
/// unreachable with the built-in catalogs.
pub fn run_class_a(config: &ClassAConfig) -> ClassAResults {
    let mut machine = Machine::new(PlatformSpec::intel_haswell(), config.seed);
    let mut meter = HclWattsUp::with_methodology(&machine, config.seed, config.methodology);
    let events = machine
        .catalog()
        .ids(&CLASS_A_PMCS)
        .expect("Class A events exist in the Haswell catalog");

    // Table 2: additivity over the compound suite.
    let cases: Vec<CompoundCase> = class_a_compound_pairs(config.n_compounds, config.seed)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let test = AdditivityTest {
        runs: config.additivity_runs,
        ..AdditivityTest::default()
    };
    let additivity = AdditivityChecker::new(test)
        .check(&mut machine, &events, &cases)
        .expect("six unconstrained events always schedule");

    // Training set: base applications; test set: the compounds.
    let base_apps = class_a_base_suite(config.n_base);
    let base_refs: Vec<&dyn Application> = base_apps.iter().map(|a| a.as_ref()).collect();
    let train = build_dataset(
        &mut machine,
        &mut meter,
        &base_refs,
        &events,
        config.pmc_repeats,
    )
    .expect("collection of Class A events cannot fail");
    let compounds = class_a_compounds(config.n_compounds, config.seed);
    let compound_refs: Vec<&dyn Application> =
        compounds.iter().map(|c| c as &dyn Application).collect();
    let test_set = build_dataset(
        &mut machine,
        &mut meter,
        &compound_refs,
        &events,
        config.pmc_repeats,
    )
    .expect("collection of Class A events cannot fail");

    // Ladders: rung k keeps the (6 − k) most additive PMCs.
    let ranked: Vec<String> = additivity.ranked().iter().map(|e| e.name.clone()).collect();
    let mut lr_rows = Vec::new();
    let mut rf_rows = Vec::new();
    let mut nn_rows = Vec::new();
    for rung in 0..CLASS_A_PMCS.len() {
        let keep = CLASS_A_PMCS.len() - rung;
        // Keep the paper's X-order for display, membership from the ranking.
        let members: Vec<&str> = CLASS_A_PMCS
            .iter()
            .copied()
            .filter(|name| ranked[..keep].iter().any(|r| r == name))
            .collect();
        let train_k = train
            .select(&members)
            .expect("members come from the feature set");
        let test_k = test_set
            .select(&members)
            .expect("members come from the feature set");

        let mut lr = LinearRegression::paper_constrained();
        lr.fit(train_k.rows(), train_k.targets())
            .expect("training set is non-empty");
        lr_rows.push(LadderRow {
            model: format!("LR{}", rung + 1),
            pmcs: members.iter().map(|s| s.to_string()).collect(),
            coefficients: Some(lr.coefficients().to_vec()),
            errors: PredictionErrors::evaluate(&lr, test_k.rows(), test_k.targets()),
        });

        let mut rf = RandomForest::new(
            ForestParams {
                n_trees: config.rf_trees,
                tree: TreeParams::default(),
                sample_fraction: 1.0,
            },
            config.seed ^ 0xF0,
        );
        rf.fit(train_k.rows(), train_k.targets())
            .expect("training set is non-empty");
        rf_rows.push(LadderRow {
            model: format!("RF{}", rung + 1),
            pmcs: members.iter().map(|s| s.to_string()).collect(),
            coefficients: None,
            errors: PredictionErrors::evaluate(&rf, test_k.rows(), test_k.targets()),
        });

        let mut nn = NeuralNet::new(
            NnParams {
                epochs: config.nn_epochs,
                ..NnParams::default()
            },
            config.seed ^ 0x99,
        );
        nn.fit(train_k.rows(), train_k.targets())
            .expect("training set is non-empty");
        nn_rows.push(LadderRow {
            model: format!("NN{}", rung + 1),
            pmcs: members.iter().map(|s| s.to_string()).collect(),
            coefficients: None,
            errors: PredictionErrors::evaluate(&nn, test_k.rows(), test_k.targets()),
        });
    }

    ClassAResults {
        additivity,
        lr: lr_rows,
        rf: rf_rows,
        nn: nn_rows,
        train_points: train.len(),
        test_points: test_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full experiment (even at smoke scale) is exercised in the
    // workspace-level integration tests; unit tests here cover the
    // configuration and table plumbing.

    #[test]
    fn paper_config_matches_paper_scale() {
        let c = ClassAConfig::paper();
        assert_eq!(c.n_base, 277);
        assert_eq!(c.n_compounds, 50);
    }

    #[test]
    fn smoke_config_is_smaller_everywhere() {
        let p = ClassAConfig::paper();
        let s = ClassAConfig::smoke();
        assert!(s.n_base < p.n_base);
        assert!(s.n_compounds < p.n_compounds);
        assert!(s.nn_epochs < p.nn_epochs);
        assert!(s.rf_trees < p.rf_trees);
    }

    #[test]
    fn class_a_pmcs_are_the_paper_six() {
        assert_eq!(CLASS_A_PMCS.len(), 6);
        assert!(CLASS_A_PMCS.contains(&"ARITH_DIVIDER_COUNT"));
        assert!(CLASS_A_PMCS.contains(&"UOPS_EXECUTED_PORT_PORT_6"));
    }
}
