//! Dataset construction: the measurement loop shared by all experiment
//! classes.
//!
//! For each application the loop measures dynamic energy through the
//! simulated HCLWattsUp API (repeated runs, sample mean) and collects the
//! requested PMCs through the multi-run group scheduler — faithfully
//! reproducing the fact that on real hardware *every feature of every
//! dataset point costs several application executions*.

use pmca_cpusim::app::Application;
use pmca_cpusim::events::EventId;
use pmca_cpusim::Machine;
use pmca_mlkit::Dataset;
use pmca_pmctools::collector::collect_with_repeats;
use pmca_pmctools::scheduler::ScheduleError;
use pmca_powermeter::HclWattsUp;

/// Build a [`Dataset`] of `(PMC vector, dynamic energy)` points for the
/// given applications. Feature names are the events' catalog names, in
/// the order of `events`.
///
/// `pmc_repeats` controls how many full collection sweeps are averaged
/// per point (the paper uses sample means everywhere).
///
/// # Errors
///
/// Propagates [`ScheduleError`] from PMC collection.
///
/// # Panics
///
/// Panics if `events` is empty.
pub fn build_dataset(
    machine: &mut Machine,
    meter: &mut HclWattsUp,
    apps: &[&dyn Application],
    events: &[EventId],
    pmc_repeats: usize,
) -> Result<Dataset, ScheduleError> {
    assert!(!events.is_empty(), "at least one event is required");
    let names: Vec<String> = events
        .iter()
        .map(|&id| machine.catalog().event(id).name.clone())
        .collect();
    let mut dataset = Dataset::new(names);
    for &app in apps {
        let energy = meter.measure_dynamic_energy(machine, app);
        let pmcs = collect_with_repeats(machine, app, events, pmc_repeats)?;
        dataset
            .push(app.name(), pmcs.in_order(events), energy.mean_joules)
            .expect("feature width is fixed by construction");
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_cpusim::PlatformSpec;
    use pmca_workloads::Dgemm;

    #[test]
    fn dataset_rows_match_apps() {
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), 2);
        let mut meter =
            HclWattsUp::with_methodology(&machine, 2, pmca_powermeter::Methodology::quick());
        let events = machine
            .catalog()
            .ids(&["UOPS_EXECUTED_CORE", "MEM_INST_RETIRED_ALL_STORES"])
            .unwrap();
        let a = Dgemm::new(7_000);
        let b = Dgemm::new(9_000);
        let apps: Vec<&dyn Application> = vec![&a, &b];
        let ds = build_dataset(&mut machine, &mut meter, &apps, &events, 1).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.feature_names()[0], "UOPS_EXECUTED_CORE");
        assert!(ds.targets().iter().all(|&e| e > 0.0));
        // Bigger problem, bigger counts and energy.
        assert!(ds.rows()[1][0] > ds.rows()[0][0]);
        assert!(ds.targets()[1] > ds.targets()[0]);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn rejects_empty_event_list() {
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), 2);
        let mut meter = HclWattsUp::new(&machine, 2);
        let _ = build_dataset(&mut machine, &mut meter, &[], &[], 1);
    }
}
