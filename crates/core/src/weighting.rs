//! Additivity-weighted regression — the paper's future-work direction.
//!
//! The paper concludes: *"In our future work, we will focus on \[a\]
//! theoretic framework explaining why additivity … improves the prediction
//! accuracy"*, and earlier flags the open question of *reducing the
//! maximum error*. A natural continuous refinement of the paper's
//! drop-the-worst ladder is to keep **all** candidate PMCs but penalise
//! each in proportion to its additivity-test error: a perfectly additive
//! counter is free, an 80%-non-additive counter is nearly frozen out.
//! Hard selection (the ladder) is the limiting case of an infinite
//! penalty.
//!
//! [`additivity_weighted_lr`] builds such a model from an
//! [`AdditivityReport`]; `repro_future_work` compares it against the
//! ladder's endpoints.

use pmca_additivity::AdditivityReport;
use pmca_mlkit::{Dataset, LinearRegression, ModelError, Regressor};

/// Strength mapping from additivity error to a per-feature ridge
/// multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditivityPenalty {
    /// Penalty multiplier per percentage point of additivity error.
    /// `0.0` recovers the plain paper-constrained fit.
    pub per_error_point: f64,
}

impl Default for AdditivityPenalty {
    fn default() -> Self {
        AdditivityPenalty {
            per_error_point: 2.0,
        }
    }
}

impl AdditivityPenalty {
    /// Multiplier for a feature with the given additivity error (%).
    pub fn multiplier(&self, error_pct: f64) -> f64 {
        1.0 + self.per_error_point * error_pct.max(0.0)
    }
}

/// Fit the paper-constrained linear model on `train` with each feature's
/// ridge scaled by its additivity error from `report`.
///
/// # Errors
///
/// Returns [`ModelError::ShapeMismatch`] when a feature of the dataset is
/// missing from the report, or propagates fit errors.
pub fn additivity_weighted_lr(
    train: &Dataset,
    report: &AdditivityReport,
    penalty: AdditivityPenalty,
) -> Result<LinearRegression, ModelError> {
    let multipliers: Vec<f64> = train
        .feature_names()
        .iter()
        .map(|name| {
            report
                .entries()
                .iter()
                .find(|e| &e.name == name)
                .map(|e| penalty.multiplier(e.max_error_pct))
                .ok_or_else(|| ModelError::ShapeMismatch {
                    detail: format!("no additivity entry for {name}"),
                })
        })
        .collect::<Result<_, _>>()?;
    let mut model = LinearRegression::paper_constrained().with_feature_penalties(multipliers);
    model.fit(train.rows(), train.targets())?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmca_additivity::{EventAdditivity, Verdict};
    use pmca_cpusim::events::EventId;

    fn report(errors: &[(&str, f64)]) -> AdditivityReport {
        let entries = errors
            .iter()
            .enumerate()
            .map(|(i, &(name, err))| EventAdditivity {
                id: EventId(i),
                name: name.into(),
                reproducible: true,
                max_error_pct: err,
                worst_compound: String::new(),
                verdict: if err <= 5.0 {
                    Verdict::Additive
                } else {
                    Verdict::NonAdditive
                },
            })
            .collect();
        AdditivityReport::new(entries, 5.0)
    }

    fn duplicated_dataset() -> Dataset {
        // Two near-duplicate predictors of y.
        let mut d = Dataset::new(vec!["clean".into(), "dirty".into()]);
        for i in 1..50 {
            let x = i as f64;
            d.push(format!("p{i}"), vec![x, x * 1.1], 5.0 * x).unwrap();
        }
        d
    }

    #[test]
    fn penalty_shifts_weight_off_non_additive_features() {
        let d = duplicated_dataset();
        let r = report(&[("clean", 0.5), ("dirty", 80.0)]);
        let weighted = additivity_weighted_lr(&d, &r, AdditivityPenalty::default()).unwrap();
        // Normalise by feature scale: share of the prediction carried.
        let clean_share = weighted.coefficients()[0] * 1.0;
        let dirty_share = weighted.coefficients()[1] * 1.1;
        assert!(
            clean_share > 5.0 * dirty_share,
            "clean {clean_share} vs dirty {dirty_share}"
        );
    }

    #[test]
    fn zero_penalty_recovers_plain_fit() {
        let d = duplicated_dataset();
        let r = report(&[("clean", 0.5), ("dirty", 80.0)]);
        let weighted = additivity_weighted_lr(
            &d,
            &r,
            AdditivityPenalty {
                per_error_point: 0.0,
            },
        )
        .unwrap();
        let mut plain = LinearRegression::paper_constrained();
        plain.fit(d.rows(), d.targets()).unwrap();
        for (a, b) in weighted.coefficients().iter().zip(plain.coefficients()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn prediction_quality_survives_the_penalty() {
        let d = duplicated_dataset();
        let r = report(&[("clean", 0.5), ("dirty", 80.0)]);
        let weighted = additivity_weighted_lr(&d, &r, AdditivityPenalty::default()).unwrap();
        let pred = weighted.predict_one(&[10.0, 11.0]);
        assert!((pred - 50.0).abs() < 2.0, "pred {pred}");
    }

    #[test]
    fn missing_report_entry_is_an_error() {
        let d = duplicated_dataset();
        let r = report(&[("clean", 0.5)]);
        assert!(matches!(
            additivity_weighted_lr(&d, &r, AdditivityPenalty::default()),
            Err(ModelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn multiplier_grows_linearly() {
        let p = AdditivityPenalty {
            per_error_point: 2.0,
        };
        assert_eq!(p.multiplier(0.0), 1.0);
        assert_eq!(p.multiplier(10.0), 21.0);
        assert_eq!(p.multiplier(-5.0), 1.0);
    }
}
