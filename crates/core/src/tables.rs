//! Plain-text table rendering in the paper's layout.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a coefficient the way the paper prints them (`3.83E-09`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.2E}")
    }
}

/// Format a (min, avg, max) error triple the way the paper prints them.
pub fn triple(e: &pmca_mlkit::PredictionErrors) -> String {
    format!("({:.2}, {:.2}, {:.2})", e.min, e.avg, e.max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["model", "error"]);
        t.row(vec!["LR1".into(), "31.2".into()]);
        t.row(vec!["a-long-model-name".into(), "1.0".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Columns align: "error" header starts at the same offset in all rows.
        let col = lines[1].find("error").unwrap();
        assert_eq!(&lines[3][col..col + 4], "31.2");
    }

    #[test]
    fn sci_formats_like_the_paper() {
        assert_eq!(sci(3.83e-9), "3.83E-9");
        assert_eq!(sci(0.0), "0");
    }

    #[test]
    fn triple_formats_like_the_paper() {
        let e = pmca_mlkit::PredictionErrors {
            min: 6.6,
            avg: 31.2,
            max: 61.9,
        };
        assert_eq!(triple(&e), "(6.60, 31.20, 61.90)");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
