//! Full-catalog additivity surveys.
//!
//! The paper's Class B selection starts from a sweep the text only
//! summarises: *"We found no PMC to be additive within tolerance of 5% for
//! the application suite. However, we discover that some PMCs are highly
//! additive for two highly optimized scientific kernels"*. This module
//! runs that sweep: apply the two-stage additivity test to **every**
//! filtered event of a platform, once over kernel (DGEMM/FFT) compounds
//! and once over diverse-suite compounds.

use pmca_additivity::{AdditivityChecker, AdditivityReport, AdditivityTest, CompoundCase, Verdict};
use pmca_cpusim::events::EventId;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_pmctools::filter::EventFilter;
use pmca_workloads::suite::{class_a_compound_pairs, class_b_compound_pairs};
use pmca_workloads::{Dgemm, Fft2d, Hpcg};

/// Configuration of a survey.
#[derive(Debug, Clone, Copy)]
pub struct SurveyConfig {
    /// Master seed.
    pub seed: u64,
    /// Kernel (DGEMM/FFT) compounds to test against.
    pub kernel_compounds: usize,
    /// Diverse-suite compounds to test against.
    pub diverse_compounds: usize,
    /// Runs per application in the additivity test.
    pub runs: usize,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            seed: 0x50_B5,
            kernel_compounds: 10,
            diverse_compounds: 16,
            runs: 3,
        }
    }
}

/// Results of a full-catalog survey on one platform.
#[derive(Debug, Clone)]
pub struct SurveyResults {
    /// Events surviving the low-count/reproducibility filter.
    pub surviving_events: usize,
    /// Additivity over kernel compounds, every surviving event.
    pub kernel_report: AdditivityReport,
    /// Additivity over diverse-suite compounds, every surviving event.
    pub diverse_report: AdditivityReport,
}

impl SurveyResults {
    /// Events additive (within tolerance) for the kernel compounds.
    pub fn kernel_additive(&self) -> usize {
        self.kernel_report.additive_ids().len()
    }

    /// Events additive for the diverse-suite compounds (the paper found
    /// zero on both platforms).
    pub fn diverse_additive(&self) -> usize {
        self.diverse_report.additive_ids().len()
    }

    /// One-paragraph summary in the paper's terms.
    pub fn summary(&self) -> String {
        format!(
            "{} events survive filtering; {} are additive (≤{:.0}%) for DGEMM/FFT compounds, \
             {} for diverse-suite compounds",
            self.surviving_events,
            self.kernel_additive(),
            self.kernel_report.tolerance_pct(),
            self.diverse_additive(),
        )
    }
}

/// Run the survey on `platform`.
///
/// # Panics
///
/// Panics only on internal inconsistencies (catalog scheduling of its own
/// events) — unreachable with the built-in catalogs.
pub fn run_survey(platform: PlatformSpec, config: &SurveyConfig) -> SurveyResults {
    let mut machine = Machine::new(platform, config.seed);

    // The paper's filter pass, with a diverse probe triple.
    let dgemm = Dgemm::new(7_000);
    let fft = Fft2d::new(23_000);
    let hpcg = Hpcg::new(1.0);
    let survivors: Vec<EventId> = EventFilter::default()
        .survivors(&mut machine, &[&dgemm, &fft, &hpcg])
        .expect("filter probes schedule");

    let test = AdditivityTest {
        runs: config.runs,
        ..AdditivityTest::default()
    };
    let checker = AdditivityChecker::new(test);

    let kernel_cases: Vec<CompoundCase> =
        class_b_compound_pairs(config.kernel_compounds, config.seed)
            .into_iter()
            .map(|(a, b)| CompoundCase::new(a, b))
            .collect();
    let kernel_report = checker
        .check(&mut machine, &survivors, &kernel_cases)
        .expect("surviving events schedule");

    let diverse_cases: Vec<CompoundCase> =
        class_a_compound_pairs(config.diverse_compounds, config.seed)
            .into_iter()
            .map(|(a, b)| CompoundCase::new(a, b))
            .collect();
    let diverse_report = checker
        .check(&mut machine, &survivors, &diverse_cases)
        .expect("surviving events schedule");

    SurveyResults {
        surviving_events: survivors.len(),
        kernel_report,
        diverse_report,
    }
}

/// Count entries with a given verdict.
pub fn count_verdict(report: &AdditivityReport, verdict: Verdict) -> usize {
    report
        .entries()
        .iter()
        .filter(|e| e.verdict == verdict)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_b::PA;

    fn small_config() -> SurveyConfig {
        SurveyConfig {
            seed: 7,
            kernel_compounds: 3,
            diverse_compounds: 16,
            runs: 2,
        }
    }

    #[test]
    fn skylake_survey_finds_the_pa_set_additive_for_kernels() {
        let results = run_survey(PlatformSpec::intel_skylake(), &small_config());
        // The filter is stochastic at the margin; the paper's 323 ± a
        // couple of lucky degenerates.
        assert!(
            (320..=326).contains(&results.surviving_events),
            "{} survivors",
            results.surviving_events
        );
        // Every PA event must be in the kernel-additive set.
        for name in PA {
            let entry = results
                .kernel_report
                .entries()
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} missing from survey"));
            assert_eq!(
                entry.verdict,
                Verdict::Additive,
                "{name}: {:.2}%",
                entry.max_error_pct
            );
        }
        // And the kernel-additive population is much richer than the
        // diverse-suite one (at full scale, 58 vs 8 — see repro_survey).
        assert!(results.kernel_additive() >= 9);
        assert!(
            results.diverse_additive() < results.kernel_additive(),
            "kernel {} vs diverse {}",
            results.kernel_additive(),
            results.diverse_additive()
        );
    }

    #[test]
    fn diverse_suite_breaks_nearly_everything() {
        // The paper: *no* PMC additive over the suite. The residue shrinks
        // with compound count (5 of 150 at the 50-compound paper scale);
        // at this test scale allow a modest fraction.
        let results = run_survey(
            PlatformSpec::intel_haswell(),
            &SurveyConfig {
                seed: 11,
                kernel_compounds: 3,
                diverse_compounds: 24,
                runs: 2,
            },
        );
        assert!(
            (148..=153).contains(&results.surviving_events),
            "{} survivors",
            results.surviving_events
        );
        let frac = results.diverse_additive() as f64 / results.surviving_events as f64;
        assert!(
            frac < 0.25,
            "{} of {} still additive",
            results.diverse_additive(),
            results.surviving_events
        );
    }

    #[test]
    fn summary_mentions_both_counts() {
        let results = run_survey(PlatformSpec::intel_skylake(), &small_config());
        let s = results.summary();
        assert!(s.contains("events survive"), "{s}");
        assert!(s.contains("DGEMM/FFT"), "{s}");
    }
}
