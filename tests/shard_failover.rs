//! Shard failover round trip (ISSUE satellite): kill a shard, restore a
//! fresh service from the dead shard's [`ModelStore`] snapshot, swap it
//! into the router's slot, and verify the rebuilt shard serves
//! bit-identical estimates over the very same TCP connections — under
//! both transports.

use pmca_serve::store::snapshot_from_dir;
use pmca_serve::{Client, EnergyService, Server, ServiceConfig, ShardRouter, Transport};
use std::sync::Arc;

const SEED: u64 = 321;

const GOOD_SET: [&str; 4] = [
    "UOPS_EXECUTED_CORE",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_DISPATCHED_PORT_PORT_4",
];

fn good_set() -> Vec<String> {
    GOOD_SET.iter().map(|s| s.to_string()).collect()
}

fn ladder() -> Vec<String> {
    (0..10)
        .flat_map(|i| {
            [
                format!("dgemm:{}", 7_000 + 1_900 * i),
                format!("fft:{}", 23_000 + 1_300 * i),
            ]
        })
        .collect()
}

fn probe_counts() -> Vec<(String, f64)> {
    GOOD_SET
        .iter()
        .enumerate()
        .map(|(i, name)| (name.to_string(), 1.0e10 + i as f64 * 3.0e9))
        .collect()
}

/// A fresh single service shaped like one shard of `build_sharded(3)`
/// with 3 workers total: in-memory store, same seed, one worker.
fn replacement_shard(transport: Transport) -> Arc<EnergyService> {
    Arc::new(
        ServiceConfig::default()
            .workers(1)
            .cache_capacity(64)
            .seed(SEED)
            .transport(transport)
            .event_loops(2)
            .build()
            .unwrap(),
    )
}

fn failover_restores_bit_identical_estimates_on(transport: Transport) {
    let router = Arc::new(
        ServiceConfig::default()
            .workers(3)
            .cache_capacity(64)
            .seed(SEED)
            .transport(transport)
            .event_loops(2)
            .build_sharded(3)
            .unwrap(),
    );
    let server = Server::start_router(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // TRAIN routes to skylake's owner shard; the router decides which.
    let owner = router.route_index("skylake");
    assert_eq!(client.train("skylake", &good_set(), &ladder()).unwrap(), 1);
    let before = client.estimate("skylake", &probe_counts()).unwrap();
    assert!(before.joules.is_finite());
    assert_eq!(
        router.shard(owner).stats().models,
        1,
        "owner holds the model"
    );

    // The owner "fails": snapshot its store, build a fresh shard,
    // restore, and swap it into the slot. Existing connections keep
    // routing through the same router.
    let snapshot = router.shard(owner).store().snapshot();
    let fresh = replacement_shard(transport);
    assert_eq!(fresh.stats().models, 0);
    let restored = fresh.store().restore(&snapshot).unwrap();
    assert_eq!(restored, 1, "the snapshot carries the trained model");
    let dead = router.replace(owner, Arc::clone(&fresh));
    assert_eq!(dead.stats().models, 1);

    // Same connection, same counts: the rebuilt shard answers
    // bit-identically — coefficients round-tripped exactly.
    let after = client.estimate("skylake", &probe_counts()).unwrap();
    assert_eq!(after, before, "failover changed the estimate");

    // SHARDS over the wire shows the same topology and ownership.
    let shards = client.shards().unwrap();
    assert_eq!(shards.len(), 3);
    assert!(shards[owner].owns.contains(&"skylake".to_string()));
    assert_eq!(shards[owner].models, 1);
    client.quit().unwrap();
}

#[test]
fn failover_restores_bit_identical_estimates() {
    failover_restores_bit_identical_estimates_on(Transport::Threaded);
}

#[test]
fn failover_restores_bit_identical_estimates_evented() {
    failover_restores_bit_identical_estimates_on(Transport::Evented);
}

#[test]
fn failover_restores_from_the_file_backed_registry() {
    let dir = std::env::temp_dir().join(format!("pmca-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A file-backed primary trains and persists; every put writes
    // through to disk.
    let primary = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(SEED)
            .registry_dir(&dir)
            .build()
            .unwrap(),
    );
    primary
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    let router = ShardRouter::single(Arc::clone(&primary));
    let before = primary.estimate("skylake", &probe_counts()).unwrap();

    // The process "dies": rebuild purely from the on-disk registry via a
    // directory snapshot, into an in-memory replacement.
    let snapshot = snapshot_from_dir(&dir).unwrap();
    let fresh = replacement_shard(Transport::Threaded);
    assert_eq!(fresh.store().restore(&snapshot).unwrap(), 1);
    router.replace(0, Arc::clone(&fresh));

    let after = router
        .primary()
        .estimate("skylake", &probe_counts())
        .unwrap();
    assert_eq!(after, before, "disk round trip changed the estimate");
    let _ = std::fs::remove_dir_all(&dir);
}
