//! Stream lifecycle edge cases over the full serving stack (ISSUE
//! satellite): duplicate OPEN, PUSH after CLOSE, out-of-order window
//! ids, idle-stream eviction, and a multi-threaded flight-recorder
//! stress run with streaming spans in flight.

use pmca_serve::{Client, EnergyService, Server, ServiceConfig, Trace, TraceScope};
use pmca_stream::synthetic_window;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn server(config: ServiceConfig) -> Server {
    Server::start(Arc::new(config.build().unwrap()), "127.0.0.1:0").unwrap()
}

fn default_server() -> Server {
    server(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(16)
            .seed(9),
    )
}

#[test]
fn duplicate_open_is_rejected_and_the_original_survives() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(
        client.stream_open("dup", "appA", "skylake", 8).unwrap(),
        8,
        "ring capacity echoes back"
    );
    let (counts, _) = synthetic_window(0, 0);
    client.stream_push("dup", 0, counts, None).unwrap();

    let err = client
        .stream_open("dup", "appB", "haswell", 4)
        .unwrap_err()
        .to_string();
    assert!(err.contains("already open"), "{err}");

    // The original stream is untouched: same app, same platform, its
    // window still retained.
    let status = client.stream_poll("dup").unwrap();
    assert_eq!(status.app, "appA");
    assert_eq!(status.platform, "skylake");
    assert_eq!(status.retained, 1);
    client.quit().unwrap();
}

#[test]
fn push_and_poll_after_close_are_unknown_stream_errors() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.stream_open("gone", "app", "skylake", 8).unwrap();
    let (counts, joules) = synthetic_window(3, 0);
    client.stream_push("gone", 0, counts, Some(joules)).unwrap();
    assert_eq!(client.stream_close("gone").unwrap(), 1);

    for result in [
        client.stream_push("gone", 1, counts, None).map(|_| ()),
        client.stream_poll("gone").map(|_| ()),
        client.stream_close("gone").map(|_| ()),
    ] {
        let err = result.unwrap_err().to_string();
        assert!(err.contains("no open stream"), "{err}");
    }

    // The id is free again after close.
    assert_eq!(client.stream_open("gone", "app", "skylake", 8).unwrap(), 8);
    let status = client.stream_poll("gone").unwrap();
    assert_eq!(status.accepted, 0, "reopen starts from a fresh ring");
    client.quit().unwrap();
}

#[test]
fn out_of_order_duplicate_and_late_windows_settle_into_a_sorted_ring() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.stream_open("ooo", "app", "skylake", 4).unwrap();
    let (counts, _) = synthetic_window(5, 0);

    // Arrivals: 10, 7 (reordered), 10 (retry duplicate), 12, 11, 13 —
    // then 7 again, which by now has slid out of the 4-slot ring.
    for (window, accepted) in [(10, true), (7, true), (10, false), (12, true), (11, true)] {
        assert_eq!(
            client.stream_push("ooo", window, counts, None).unwrap(),
            accepted,
            "window {window}"
        );
    }
    assert!(client.stream_push("ooo", 13, counts, None).unwrap());
    assert!(
        !client.stream_push("ooo", 7, counts, None).unwrap(),
        "window 7 is older than the full ring retains"
    );

    let status = client.stream_poll("ooo").unwrap();
    assert_eq!(status.accepted, 5);
    assert_eq!(status.duplicates, 1);
    assert_eq!(status.late, 1);
    assert_eq!(status.retained, 4);
    assert_eq!(status.highest, 13);
    client.quit().unwrap();
}

#[test]
fn idle_streams_are_evicted_but_active_streams_survive() {
    let server = default_server();
    let hub = Arc::clone(server.service().stream_hub().expect("streaming on"));
    let mut client = Client::connect(server.addr()).unwrap();
    client.stream_open("idle", "app", "skylake", 8).unwrap();
    client.stream_open("busy", "app", "skylake", 8).unwrap();
    let (counts, _) = synthetic_window(1, 0);
    thread::sleep(Duration::from_millis(30));
    client.stream_push("busy", 0, counts, None).unwrap();

    // Sweep with a horizon between the two streams' idle times: "idle"
    // has been quiet since its open, "busy" accepted a push just now.
    assert_eq!(hub.evict_idle_older_than(Duration::from_millis(20)), 1);
    let survivors = client.stream_list().unwrap();
    assert_eq!(survivors.len(), 1);
    assert_eq!(survivors[0].stream, "busy");
    let err = client.stream_poll("idle").unwrap_err().to_string();
    assert!(err.contains("no open stream"), "{err}");
    client.quit().unwrap();
}

#[test]
fn concurrent_streaming_keeps_the_flight_recorder_coherent() {
    // Labelled pushes small enough refit_every that heavy refits (and
    // their "stream.refit" traces) fire while open/close churn records
    // request traces from many connections at once.
    let server = server(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(16)
            .seed(11)
            .stream_refit_every(8)
            .trace_capacity(256),
    );
    let addr = server.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..6 {
                    let id = format!("stress-{t}-{round}");
                    client.stream_open(&id, "app", "skylake", 16).unwrap();
                    for w in 0..12u64 {
                        let (counts, joules) = synthetic_window(t, w);
                        client.stream_push(&id, w, counts, Some(joules)).unwrap();
                    }
                    let status = client.stream_poll(&id).unwrap();
                    assert!(status.watts.is_finite() && status.watts >= 0.0);
                    assert_eq!(client.stream_close(&id).unwrap(), 12);
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for handle in threads {
        handle.join().unwrap();
    }

    // Give detached refit threads a moment to finish their traces.
    let service: &Arc<EnergyService> = server.service();
    for _ in 0..200 {
        if service.stats().stream_refits > 0 {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    assert!(
        service.stats().stream_refits > 0,
        "4 threads x 6 rounds x 12 labelled windows must cross refit_every=8"
    );

    let mut client = Client::connect(addr).unwrap();
    let lines = client.trace(TraceScope::Recent, None).unwrap();
    let traces = Trace::parse_dump(&lines).unwrap();
    assert!(!traces.is_empty(), "flight recorder retained traces");
    let labels: Vec<&str> = traces.iter().map(|t| t.label.as_str()).collect();
    assert!(
        labels.contains(&"stream-open") || labels.contains(&"stream-close"),
        "stream request traces recorded: {labels:?}"
    );
    // Every retained trace parses back with consistent span nesting —
    // the recorder stayed coherent under concurrent streaming load.
    for trace in &traces {
        for (_, ns) in trace.span_durations() {
            assert!(ns <= trace.total_ns, "span exceeds its trace total");
        }
    }
    let refit_trace = traces.iter().find(|t| t.label == "stream.refit");
    if let Some(refit) = refit_trace {
        assert!(refit.total_ns > 0, "refit trace has a duration");
    }
    client.quit().unwrap();
}
