//! Cross-ISA bit-identity properties for the SIMD kernel layer (PR 10).
//!
//! The dispatch contract in `pmca-simd` is that every instruction set
//! produces **bit-identical** output — SIMD is a throughput lever, never
//! an accuracy knob, so an operator toggling `PMCA_SIMD` can never
//! change a served estimate. These properties exercise that contract
//! end to end through the public model APIs for all three vectorized
//! kernels — the fixed-point batch evaluator (linear MAC and i64 forest
//! routing), the f64 batch kernels (pairwise dot and f64 forest), and
//! the raw dot product the stream hub's window-estimate path uses —
//! across random models, feature widths 1–64, and ragged batch tails
//! that force the kernels through their scalar remainder handling.

use pmca_mlkit::tree::NodeSpec;
use pmca_mlkit::{CompiledModel, FixedBatch, FixedModel, ModelParams};
use pmca_simd::Isa;
use proptest::prelude::*;

/// Feature domain bound used for every lowered model.
const FEATURE_MAX: f64 = 200.0;

/// Every instruction set this CPU can actually run (always includes
/// `Scalar`; `Sse2`/`Avx2` only where supported).
fn supported_isas() -> Vec<Isa> {
    let mut all = vec![Isa::Scalar, Isa::Sse2, Isa::Avx2];
    all.retain(|isa| isa.clamp_supported() == *isa);
    all
}

/// Split a flat cell buffer into `width`-sized rows, dropping the
/// ragged remainder so every row is full width.
fn rows_of(cells: &[f64], width: usize) -> Vec<&[f64]> {
    cells.chunks_exact(width).collect()
}

/// Deterministically grow a random preorder tree from an LCG stream.
///
/// Depth is capped so the preorder list stays small and leaf values stay
/// modest, keeping every generated forest inside the fixed-point
/// lowering's accumulator budget.
fn grow_tree(state: &mut u64, width: usize, depth: usize, out: &mut Vec<NodeSpec>) {
    let next = |state: &mut u64| {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    };
    let split = depth > 0 && next(state) % 3 != 0;
    if split {
        let feature = next(state) as usize % width;
        let threshold = (next(state) % 2_000) as f64 / 2_000.0 * FEATURE_MAX;
        out.push(NodeSpec::Split { feature, threshold });
        grow_tree(state, width, depth - 1, out);
        grow_tree(state, width, depth - 1, out);
    } else {
        let value = (next(state) % 10_000) as f64 / 100.0 - 20.0;
        out.push(NodeSpec::Leaf { value });
    }
}

/// A random forest over `width` features, seeded by `seed`.
fn random_forest(seed: u64, width: usize, trees: usize) -> ModelParams {
    let mut state = seed | 1;
    let trees = (0..trees)
        .map(|_| {
            let mut nodes = Vec::new();
            grow_tree(&mut state, width, 4, &mut nodes);
            nodes
        })
        .collect();
    ModelParams::Forest { width, trees }
}

/// Evaluate `fixed` on `rows` under `isa` via the batched SoA path.
fn fixed_batch_eval(fixed: &FixedModel, isa: Isa, rows: &[&[f64]]) -> Vec<f64> {
    let mut batch = FixedBatch::new();
    fixed.push_rows(&mut batch, rows);
    let mut out = Vec::with_capacity(rows.len());
    fixed.predict_batch_into_with(isa, &mut batch, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-point linear MAC: every ISA produces the same bits as the
    /// scalar kernel and as the single-row walk.
    #[test]
    fn fixed_linear_batches_are_bit_identical_across_isas(
        coefficients in collection::vec(0.0f64..5.0, 1..65),
        intercept in 0.0f64..50.0,
        cells in collection::vec(-10.0f64..220.0, 0..512),
    ) {
        let width = coefficients.len();
        let params = ModelParams::Linear { coefficients, intercept };
        let fixed = FixedModel::lower(&params, FEATURE_MAX).expect("linear lowering");
        let rows = rows_of(&cells, width);
        let baseline = fixed_batch_eval(&fixed, Isa::Scalar, &rows);
        for (&row, &got) in rows.iter().zip(&baseline) {
            prop_assert_eq!(got.to_bits(), fixed.predict_one(row).to_bits());
        }
        for isa in supported_isas() {
            let out = fixed_batch_eval(&fixed, isa, &rows);
            prop_assert_eq!(out.len(), baseline.len());
            for (&a, &b) in out.iter().zip(&baseline) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "isa {}", isa.as_str());
            }
        }
    }

    /// Fixed-point i64 forest routing: lockstep AVX2 traversal (and the
    /// SSE2 scalar fallback) match the scalar walk bit for bit, including
    /// ragged sub-4-row tails.
    #[test]
    fn fixed_forest_batches_are_bit_identical_across_isas(
        seed in 0u64..u64::MAX,
        width in 1usize..65,
        trees in 1usize..6,
        cells in collection::vec(-10.0f64..220.0, 0..384),
    ) {
        let params = random_forest(seed, width, trees);
        let fixed = FixedModel::lower(&params, FEATURE_MAX).expect("forest lowering");
        let rows = rows_of(&cells, width);
        let baseline = fixed_batch_eval(&fixed, Isa::Scalar, &rows);
        for (&row, &got) in rows.iter().zip(&baseline) {
            prop_assert_eq!(got.to_bits(), fixed.predict_one(row).to_bits());
        }
        for isa in supported_isas() {
            let out = fixed_batch_eval(&fixed, isa, &rows);
            prop_assert_eq!(out.len(), baseline.len());
            for (&a, &b) in out.iter().zip(&baseline) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "isa {}", isa.as_str());
            }
        }
    }

    /// f64 linear batches (the compiled-model kernel; also the stream
    /// hub's per-window estimate shape): bit-identical across ISAs and
    /// equal to the single-row pairwise dot.
    #[test]
    fn f64_linear_batches_are_bit_identical_across_isas(
        coefficients in collection::vec(-5.0f64..5.0, 1..65),
        intercept in -50.0f64..50.0,
        cells in collection::vec(-1000.0f64..1000.0, 0..512),
    ) {
        let width = coefficients.len();
        let params = ModelParams::Linear { coefficients, intercept };
        let compiled = CompiledModel::compile(&params).expect("compile linear");
        let rows = rows_of(&cells, width);
        let mut baseline = Vec::new();
        compiled.predict_batch_into_with(Isa::Scalar, &rows, &mut baseline);
        for (&row, &got) in rows.iter().zip(&baseline) {
            prop_assert_eq!(got.to_bits(), compiled.predict_one(row).to_bits());
        }
        for isa in supported_isas() {
            let mut out = Vec::new();
            compiled.predict_batch_into_with(isa, &rows, &mut out);
            prop_assert_eq!(out.len(), baseline.len());
            for (&a, &b) in out.iter().zip(&baseline) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "isa {}", isa.as_str());
            }
        }
    }

    /// f64 forest batches: masked lane routing matches the scalar tree
    /// walk bit for bit, ragged tails included.
    #[test]
    fn f64_forest_batches_are_bit_identical_across_isas(
        seed in 0u64..u64::MAX,
        width in 1usize..65,
        trees in 1usize..6,
        cells in collection::vec(-10.0f64..220.0, 0..384),
    ) {
        let params = random_forest(seed, width, trees);
        let compiled = CompiledModel::compile(&params).expect("compile forest");
        let rows = rows_of(&cells, width);
        let mut baseline = Vec::new();
        compiled.predict_batch_into_with(Isa::Scalar, &rows, &mut baseline);
        for (&row, &got) in rows.iter().zip(&baseline) {
            prop_assert_eq!(got.to_bits(), compiled.predict_one(row).to_bits());
        }
        for isa in supported_isas() {
            let mut out = Vec::new();
            compiled.predict_batch_into_with(isa, &rows, &mut out);
            prop_assert_eq!(out.len(), baseline.len());
            for (&a, &b) in out.iter().zip(&baseline) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "isa {}", isa.as_str());
            }
        }
    }

    /// The raw pairwise dot product every f64 path shares: identical
    /// bits on every ISA for lengths 0–129 (covering all lane tails).
    #[test]
    fn raw_dot_is_bit_identical_across_isas(
        xs in collection::vec(-1.0e3f64..1.0e3, 0..130),
        ws in collection::vec(-1.0e3f64..1.0e3, 0..130),
    ) {
        let baseline = pmca_simd::dot_f64(Isa::Scalar, &xs, &ws);
        for isa in supported_isas() {
            let got = pmca_simd::dot_f64(isa, &xs, &ws);
            prop_assert_eq!(got.to_bits(), baseline.to_bits(), "isa {}", isa.as_str());
        }
    }
}
