//! Integration tests over the measurement stack additions: the
//! multiplexing collector, the on-chip sensor, the online model, and the
//! phase-structured workloads — exercised together, across crates.

use pmca_core::online::OnlineModel;
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_pmctools::collector::collect_all;
use pmca_pmctools::multiplex::Multiplexer;
use pmca_powermeter::rapl::RaplSensor;
use pmca_powermeter::{HclWattsUp, Methodology};
use pmca_workloads::pipeline::{PipelineApp, Stage};
use pmca_workloads::{Dgemm, Fft2d};

/// The three measurement approaches of the paper's taxonomy, compared on
/// one workload: the external meter is unbiased, the on-chip sensor is
/// workload-biased, and the PMC model sits in between.
#[test]
fn measurement_taxonomy_behaves_as_the_paper_describes() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 51);
    let mut meter = HclWattsUp::with_methodology(&machine, 51, Methodology::standard());

    // (a) external meter: tracks truth within noise on any workload.
    for app in [Dgemm::new(14_000), Dgemm::new(20_000)] {
        let measured = meter.measure_dynamic_energy(&mut machine, &app).mean_joules;
        let truth = machine.run(&app).dynamic_energy_joules;
        assert!(
            (measured - truth).abs() / truth < 0.08,
            "meter {measured} vs truth {truth}"
        );
    }

    // (b) on-chip sensor: systematic bias that flips sign with the
    // workload's memory character.
    let sensor = RaplSensor::default();
    let compute = machine.run(&Dgemm::new(14_000));
    let memory = machine.run(&Fft2d::new(26_000));
    assert!(
        sensor.relative_error(&compute) > 0.0,
        "compute-bound should overestimate"
    );
    assert!(
        sensor.relative_error(&memory) < sensor.relative_error(&compute),
        "memory-bound bias must be lower"
    );
}

/// Multiplexed collection trades runs for accuracy — quantified end to
/// end on a real workload.
#[test]
fn multiplexing_trades_runs_for_accuracy() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 52);
    let app = Dgemm::new(12_000);
    let events = machine
        .catalog()
        .ids(&[
            "UOPS_EXECUTED_CORE",
            "FP_ARITH_INST_RETIRED_DOUBLE",
            "MEM_INST_RETIRED_ALL_STORES",
            "L2_RQSTS_MISS",
            "IDQ_MS_UOPS",
            "ICACHE_64B_IFTAG_MISS",
            "ARITH_DIVIDER_COUNT",
            "MEM_LOAD_RETIRED_L3_MISS",
        ])
        .unwrap();

    let grouped = collect_all(&mut machine, &app, &events).unwrap();
    let muxed = Multiplexer::default()
        .collect(&mut machine, &app, &events)
        .unwrap();

    assert!(grouped.runs_used >= 3, "grouped should need several runs");
    assert_eq!(muxed.runs_used, 1, "multiplexing must cost one run");
    for &id in &events {
        let g = grouped.get(id);
        let m = muxed.get(id);
        let rel = (g - m).abs() / g.max(1.0);
        assert!(rel < 0.30, "{id}: grouped {g} vs muxed {m}");
    }
}

/// An online model trained through the full stack estimates the energy of
/// phase-structured applications it never saw, from a single run each.
#[test]
fn online_model_generalises_to_pipelines() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 53);
    let mut meter = HclWattsUp::with_methodology(&machine, 53, Methodology::quick());

    // Train on kernels *and* pipelines so both regimes are in range.
    let mut apps: Vec<Box<dyn Application>> = Vec::new();
    for i in 0..10 {
        apps.push(Box::new(Dgemm::new(8_000 + 2_000 * i)));
        apps.push(Box::new(Fft2d::new(23_000 + 1_500 * i)));
        apps.push(Box::new(PipelineApp::etl(
            &format!("train{i}"),
            0.5 + 0.35 * i as f64,
        )));
    }
    let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
    let model = OnlineModel::train(
        &mut machine,
        &mut meter,
        &[
            "UOPS_EXECUTED_CORE",
            "FP_ARITH_INST_RETIRED_DOUBLE",
            "MEM_INST_RETIRED_ALL_STORES",
            "UOPS_DISPATCHED_PORT_PORT_4",
        ],
        &refs,
    )
    .unwrap();

    let unseen = PipelineApp::new(
        "deploy",
        vec![
            (Stage::Load, 2.5),
            (Stage::Compute, 4.0),
            (Stage::Store, 1.5),
        ],
    );
    let estimate = model.estimate(&mut machine, &unseen);
    let truth = meter
        .measure_dynamic_energy(&mut machine, &unseen)
        .mean_joules;
    let rel = (estimate - truth).abs() / truth;
    assert!(rel < 0.5, "estimate {estimate} vs truth {truth} ({rel:.2})");
}

/// Compound pipelines keep the energy-additivity invariant through the
/// meter — phases, interference, and personality included.
#[test]
fn pipeline_compounds_are_meter_additive() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 54);
    let mut meter = HclWattsUp::with_methodology(&machine, 54, Methodology::standard());
    let a = PipelineApp::etl("left", 1.0);
    let b = PipelineApp::new("right", vec![(Stage::Compute, 2.0), (Stage::Store, 1.0)]);
    let ea = meter.measure_dynamic_energy(&mut machine, &a).mean_joules;
    let eb = meter.measure_dynamic_energy(&mut machine, &b).mean_joules;
    let compound = pmca_cpusim::app::CompoundApp::pair(a, b);
    let eab = meter
        .measure_dynamic_energy(&mut machine, &compound)
        .mean_joules;
    let rel = ((ea + eb) - eab).abs() / (ea + eb);
    assert!(rel < 0.05, "{ea} + {eb} vs {eab} ({rel:.3})");
}
