//! Smoke tests of the full Class A/B/C experiment drivers at reduced
//! scale: every table renders, shapes match the paper's designs, and the
//! headline qualitative results hold.

use pmca_additivity::Verdict;
use pmca_core::class_a::{run_class_a, ClassAConfig, CLASS_A_PMCS};
use pmca_core::class_b::{run_class_b, ClassBConfig, PA, PNA};
use pmca_core::class_c::run_class_c;

#[test]
fn class_a_smoke_produces_paper_shaped_results() {
    let results = run_class_a(&ClassAConfig::smoke());

    // Table 2: all six PMCs, none additive within 5% (the paper's finding).
    assert_eq!(results.additivity.entries().len(), 6);
    for entry in results.additivity.entries() {
        assert_ne!(
            entry.verdict,
            Verdict::Additive,
            "{} unexpectedly additive ({:.1}%)",
            entry.name,
            entry.max_error_pct
        );
    }
    // The divider is the worst offender, as in Table 2.
    assert_eq!(
        results.additivity.least_additive().unwrap().name,
        "ARITH_DIVIDER_COUNT"
    );

    // Ladders: 6 rungs each, shrinking PMC sets, LR rows carry coefficients.
    for ladder in [&results.lr, &results.rf, &results.nn] {
        assert_eq!(ladder.len(), 6);
        for (i, row) in ladder.iter().enumerate() {
            assert_eq!(row.pmcs.len(), 6 - i, "{}", row.model);
            assert!(row.errors.min <= row.errors.avg && row.errors.avg <= row.errors.max);
        }
    }
    for row in &results.lr {
        let coeffs = row.coefficients.as_ref().unwrap();
        assert_eq!(coeffs.len(), row.pmcs.len());
        assert!(
            coeffs.iter().all(|&c| c >= 0.0),
            "{}: negative coefficient",
            row.model
        );
    }

    // The headline: dropping non-additive PMCs improves the LR average
    // error; the best rung beats the all-six rung.
    let best_lr = results
        .lr
        .iter()
        .map(|r| r.errors.avg)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_lr < results.lr[0].errors.avg,
        "no LR improvement: all-six {:.1}% vs best {:.1}%",
        results.lr[0].errors.avg,
        best_lr
    );

    // Tables render and mention every model and PMC.
    let t2 = results.table2();
    for pmc in CLASS_A_PMCS {
        assert!(t2.contains(pmc), "table2 missing {pmc}");
    }
    assert!(results.table3().contains("LR6"));
    assert!(results.table4().contains("RF1"));
    assert!(results.table5().contains("NN4"));
}

#[test]
fn class_b_and_c_smoke_produce_paper_shaped_results() {
    let config = ClassBConfig::smoke();
    let results = run_class_b(&config);

    // Additivity: the PA set passes, the PNA set fails — Table 6's split.
    for entry in results.additivity.entries() {
        let name = entry.name.as_str();
        if PA.contains(&name) {
            assert_eq!(
                entry.verdict,
                Verdict::Additive,
                "{name}: {:.2}%",
                entry.max_error_pct
            );
        } else {
            assert!(PNA.contains(&name), "unexpected event {name}");
            assert_ne!(
                entry.verdict,
                Verdict::Additive,
                "{name}: {:.2}%",
                entry.max_error_pct
            );
        }
    }

    // Correlations exist for all 18 events and are in [−1, 1].
    assert_eq!(results.correlations.len(), 18);
    for (name, corr) in &results.correlations {
        assert!((-1.0..=1.0).contains(corr), "{name}: {corr}");
    }

    // Table 7a: six models in the paper's order; additive sets win on
    // average for LR and NN. Random forests split per kernel family and
    // largely neutralise the non-additive features' slope mismatch, so
    // RF-A vs RF-NA is statistically close in this reproduction (the paper
    // saw a modest 29% vs 37% gap); assert RF-A is at least competitive.
    let model_names: Vec<&str> = results.models.iter().map(|m| m.model.as_str()).collect();
    assert_eq!(
        model_names,
        vec!["LR-A", "LR-NA", "RF-A", "RF-NA", "NN-A", "NN-NA"]
    );
    for family in [0, 4] {
        let a = results.models[family].errors.avg;
        let na = results.models[family + 1].errors.avg;
        assert!(
            a < na,
            "{} ({a:.1}%) should beat {} ({na:.1}%)",
            results.models[family].model,
            results.models[family + 1].model
        );
    }
    let rf_a = results.models[2].errors.avg;
    let rf_na = results.models[3].errors.avg;
    assert!(
        rf_a < rf_na * 1.5 + 5.0,
        "RF-A ({rf_a:.1}%) far worse than RF-NA ({rf_na:.1}%)"
    );

    assert!(results.table6().contains("FP_ARITH_INST_RETIRED_DOUBLE"));
    assert!(results.table7a().contains("NN-NA"));

    // Class C on the same splits.
    let c = run_class_c(&results, config.nn_epochs, config.rf_trees, config.seed);
    assert_eq!(c.pa4.len(), 4);
    assert_eq!(c.pna4.len(), 4);
    for name in &c.pa4 {
        assert!(PA.contains(&name.as_str()), "{name} not in PA");
    }
    for name in &c.pna4 {
        assert!(PNA.contains(&name.as_str()), "{name} not in PNA");
    }
    let c_names: Vec<&str> = c.models.iter().map(|m| m.model.as_str()).collect();
    assert_eq!(
        c_names,
        vec!["LR-A4", "LR-NA4", "RF-A4", "RF-NA4", "NN-A4", "NN-NA4"]
    );
    // PA4 models beat PNA4 models on average for LR and NN; RF is held to
    // the competitive bound (see the Class B comment above).
    for family in [0, 4] {
        let a = c.models[family].errors.avg;
        let na = c.models[family + 1].errors.avg;
        assert!(
            a < na,
            "{} ({a:.1}%) should beat {} ({na:.1}%)",
            c.models[family].model,
            c.models[family + 1].model
        );
    }
    let rf_a4 = c.models[2].errors.avg;
    let rf_na4 = c.models[3].errors.avg;
    assert!(
        rf_a4 < rf_na4 * 1.5 + 5.0,
        "RF-A4 ({rf_a4:.1}%) far worse than RF-NA4 ({rf_na4:.1}%)"
    );
    assert!(c.table7b().contains("LR-NA4"));
}
