//! Parallel == serial bit-identity across the offline pipeline.
//!
//! The `pmca-parallel` contract is that every parallel computation is
//! bit-identical to its serial counterpart at any thread count: seeds are
//! split in closed form, run indices are reserved before fan-out, and
//! reductions happen in a fixed order. These tests exercise that contract
//! end to end — collection sweeps, additivity matrices, k-fold CV, and
//! forest training — at 1, 2, 4, and 8 threads, plus stress tests of the
//! pool itself (nested scopes, panic propagation, no lost tasks).

use pmca_additivity::{AdditivityChecker, AdditivityMatrix, CompoundCase};
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{k_fold_with_pool, LinearRegression, RandomForest, Regressor};
use pmca_parallel::{set_global_jobs, ThreadPool};
use pmca_pmctools::collector::collect_sweeps_batch;
use pmca_workloads::suite::class_b_compound_pairs;
use pmca_workloads::{Dgemm, Fft2d};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn machine() -> Machine {
    Machine::new(PlatformSpec::intel_haswell(), 42)
}

fn few_events(machine: &Machine) -> Vec<pmca_cpusim::events::EventId> {
    let ids = machine.catalog().all_ids();
    ids.into_iter().take(9).collect()
}

#[test]
fn collect_sweeps_batch_is_thread_count_invariant() {
    let apps: Vec<Box<dyn Application>> =
        vec![Box::new(Dgemm::new(9_000)), Box::new(Fft2d::new(16_000))];
    let refs: Vec<&dyn Application> = apps.iter().map(AsRef::as_ref).collect();

    let mut baseline = None;
    for threads in THREAD_COUNTS {
        let mut m = machine();
        let events = few_events(&m);
        let batch = collect_sweeps_batch(&mut m, &refs, &events, 3, &ThreadPool::new(threads))
            .expect("collect");
        let fingerprint: Vec<(Vec<u64>, usize)> = batch
            .iter()
            .map(|sweep| {
                let mut bits = Vec::new();
                for sample in &sweep.samples {
                    for &id in &sweep.events {
                        bits.push(sample[&id].to_bits());
                    }
                }
                (bits, sweep.runs_used)
            })
            .collect();
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expected) => assert_eq!(
                expected, &fingerprint,
                "collect differs at {threads} threads"
            ),
        }
    }
}

#[test]
fn additivity_matrix_is_thread_count_invariant() {
    let cases: Vec<CompoundCase> = class_b_compound_pairs(3, 7)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let checker = AdditivityChecker::default();

    let mut baseline: Option<(String, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        let mut m = machine();
        let events = few_events(&m);
        let matrix = AdditivityMatrix::measure_with_pool(
            &checker,
            &mut m,
            &events,
            &cases,
            &ThreadPool::new(threads),
        )
        .expect("matrix");
        let mut bits = Vec::new();
        for e in 0..matrix.event_names().len() {
            for c in 0..matrix.compound_names().len() {
                bits.push(matrix.error(e, c).to_bits());
            }
        }
        let fingerprint = (matrix.to_table(), bits);
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expected) => assert_eq!(
                expected, &fingerprint,
                "matrix differs at {threads} threads"
            ),
        }
    }
}

#[test]
fn k_fold_cv_is_thread_count_invariant() {
    let x: Vec<Vec<f64>> = (1..=64)
        .map(|i| vec![i as f64, (i * i % 13) as f64])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 2.5 * r[0] + 0.3 * r[1]).collect();

    let mut baseline: Option<Vec<[u64; 3]>> = None;
    for threads in THREAD_COUNTS {
        let cv = k_fold_with_pool(
            &x,
            &y,
            8,
            LinearRegression::paper_constrained,
            &ThreadPool::new(threads),
        )
        .expect("cv");
        let fingerprint: Vec<[u64; 3]> = cv
            .folds
            .iter()
            .map(|f| [f.min.to_bits(), f.avg.to_bits(), f.max.to_bits()])
            .collect();
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expected) => {
                assert_eq!(expected, &fingerprint, "CV differs at {threads} threads");
            }
        }
    }
}

#[test]
fn forest_fit_is_thread_count_invariant() {
    // The forest fits its trees on the process-wide pool, so this test
    // resizes the global pool; every other computation in this binary is
    // itself thread-count invariant, so concurrent tests are unaffected.
    let x: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64, (i % 7) as f64]).collect();
    let y: Vec<f64> = (0..90)
        .map(|i| 1.7 * i as f64 + if i % 2 == 0 { 0.9 } else { -0.9 })
        .collect();

    let mut baseline: Option<Vec<u64>> = None;
    for threads in THREAD_COUNTS {
        set_global_jobs(threads);
        let mut rf = RandomForest::with_seed(31);
        rf.fit(&x, &y).expect("fit");
        let fingerprint: Vec<u64> = x.iter().map(|r| rf.predict_one(r).to_bits()).collect();
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expected) => {
                assert_eq!(
                    expected, &fingerprint,
                    "forest differs at {threads} threads"
                );
            }
        }
    }
    set_global_jobs(1);
}

#[test]
fn nested_scopes_complete() {
    let pool = ThreadPool::new(4);
    let outer = AtomicUsize::new(0);
    let inner = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                outer.fetch_add(1, Ordering::Relaxed);
                // A task may not spawn into its own scope, but it can open
                // a fresh one on the same pool.
                ThreadPool::new(2).scope(|s2| {
                    for _ in 0..4 {
                        s2.spawn(|| {
                            inner.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(outer.load(Ordering::Relaxed), 8);
    assert_eq!(inner.load(Ordering::Relaxed), 32);
}

#[test]
fn panic_in_task_propagates_without_losing_tasks() {
    let pool = ThreadPool::new(4);
    let completed = AtomicUsize::new(0);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..64 {
                let completed = &completed;
                s.spawn(move || {
                    if i == 17 {
                        panic!("deliberate failure in task 17");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    let payload = caught.expect_err("task panic must reach the caller");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(message.contains("deliberate failure"), "payload: {message}");
    // A panicking task aborts only itself: the other 63 still ran.
    assert_eq!(completed.load(Ordering::Relaxed), 63);
}

#[test]
fn no_lost_tasks_under_stress() {
    let pool = ThreadPool::new(8);
    for round in 0..20 {
        let n = 50 + round * 13;
        let items: Vec<usize> = (0..n).collect();
        let doubled = pool.par_map(&items, |&i| i * 2);
        assert_eq!(doubled.len(), n);
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, i * 2, "round {round}");
        }
    }
}
