//! Model-health plane over the full serving stack (ISSUE tentpole +
//! satellite): `HEALTH` / `HISTORY` round trips over TCP, cross-shard
//! aggregation with `shard=all` rows, METRICS/TRACE consistency under
//! `--shards 2` on both transports, and gauge sanity across a shard
//! `replace()` failover.

use pmca_serve::{
    Client, HealthRow, HealthState, Server, ServiceConfig, Trace, TraceScope, Transport,
    STREAM_PUSH_COUNTS,
};
use std::sync::Arc;

const GOOD_SET: [&str; 4] = [
    "UOPS_EXECUTED_CORE",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_DISPATCHED_PORT_PORT_4",
];

fn good_set() -> Vec<String> {
    GOOD_SET.iter().map(|s| s.to_string()).collect()
}

fn ladder() -> Vec<String> {
    (0..10)
        .flat_map(|i| {
            [
                format!("dgemm:{}", 7_000 + 1_900 * i),
                format!("fft:{}", 23_000 + 1_300 * i),
            ]
        })
        .collect()
}

fn calibration_rows(rows: &[HealthRow]) -> Vec<(Option<usize>, &pmca_serve::CalibrationSnapshot)> {
    rows.iter()
        .filter_map(|row| match row {
            HealthRow::Calibration { shard, snapshot } => Some((*shard, snapshot)),
            HealthRow::Additivity { .. } => None,
        })
        .collect()
}

fn additivity_rows(rows: &[HealthRow]) -> Vec<(Option<usize>, &pmca_serve::AdditivitySnapshot)> {
    rows.iter()
        .filter_map(|row| match row {
            HealthRow::Additivity { shard, snapshot } => Some((*shard, snapshot)),
            HealthRow::Calibration { .. } => None,
        })
        .collect()
}

#[test]
fn train_holdout_and_labelled_streams_populate_health_over_tcp() {
    let service = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(17)
            .build()
            .unwrap(),
    );
    let server = Server::start(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // TRAIN feeds its holdout (predicted, measured) pairs into the
    // calibration tracker, so HEALTH reports rows before any stream
    // traffic arrives.
    client.train("skylake", &good_set(), &ladder()).unwrap();
    let rows = client.health().unwrap();
    let calibration = calibration_rows(&rows);
    assert_eq!(calibration.len(), 1, "{rows:?}");
    let (shard, c) = &calibration[0];
    assert_eq!(*shard, Some(0), "single shard labels itself 0");
    assert_eq!(c.platform, "skylake");
    assert_eq!(c.version, 1);
    assert!(c.samples >= 10, "holdout fed every training pair: {c:?}");
    assert!(c.mae.is_finite() && c.mae >= 0.0);
    assert!((0.0..=1.0).contains(&c.coverage), "{c:?}");
    assert!(
        c.coverage >= 0.5,
        "a 95% PI should cover most in-sample residuals: {c:?}"
    );
    assert_eq!(c.state, HealthState::Ok, "{c:?}");

    // Perfectly additive compound traffic: base streams a and b plus a
    // compound a;b whose counts are exactly the sum. Every deployable
    // counter must report checks with zero violations.
    let base_a = [1.0e10; STREAM_PUSH_COUNTS];
    let base_b = [2.0e10; STREAM_PUSH_COUNTS];
    let compound = [3.0e10; STREAM_PUSH_COUNTS];
    client
        .stream_open("sa", "dgemm:8000", "skylake", 8)
        .unwrap();
    client.stream_open("sb", "fft:24000", "skylake", 8).unwrap();
    client
        .stream_open("sc", "dgemm:8000;fft:24000", "skylake", 8)
        .unwrap();
    client.stream_push("sa", 0, base_a, None).unwrap();
    client.stream_push("sb", 0, base_b, None).unwrap();
    client.stream_push("sc", 0, compound, None).unwrap();

    let rows = client.health().unwrap();
    let additivity = additivity_rows(&rows);
    assert_eq!(
        additivity.len(),
        STREAM_PUSH_COUNTS,
        "one row per deployable counter: {rows:?}"
    );
    for (_, a) in &additivity {
        assert_eq!(a.platform, "skylake");
        assert_eq!(a.checks, 1, "{a:?}");
        assert_eq!(a.violations, 0, "additive counts violate nothing: {a:?}");
        assert!(a.worst_error_pct < 1.0, "{a:?}");
    }

    // Labelled pushes keep growing the calibration sample count.
    let before = calibration_rows(&client.health().unwrap())[0].1.samples;
    client.stream_push("sa", 1, base_a, Some(250.0)).unwrap();
    let after = calibration_rows(&client.health().unwrap())[0].1.samples;
    assert!(
        after > before,
        "labelled push observed: {before} -> {after}"
    );
    client.quit().unwrap();
}

#[test]
fn history_retains_multiple_snapshots_and_honours_the_limit() {
    let service = Arc::new(
        ServiceConfig::default()
            .workers(1)
            .cache_capacity(8)
            .seed(3)
            .history_capacity(4)
            .build()
            .unwrap(),
    );
    let server = Server::start(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Each HEALTH or HISTORY request records one snapshot on the
    // primary, so polling is what advances the clock-free ring.
    client.health().unwrap();
    let rows = client.history(None).unwrap();
    assert!(!rows.is_empty());
    let seqs: Vec<u64> = {
        let mut s: Vec<u64> = rows.iter().map(|r| r.seq).collect();
        s.dedup();
        s
    };
    assert!(seqs.len() >= 2, "health + history probes: {seqs:?}");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "snapshots arrive oldest first: {seqs:?}"
    );

    // Values carry deltas vs the previous snapshot: the health command
    // counter grew by one between the two probes above.
    let health_count = rows
        .iter()
        .filter(|r| {
            r.metric.starts_with("pmca_serve_command_seconds_count")
                && r.metric.contains(r#"command="health""#)
        })
        .collect::<Vec<_>>();
    assert!(!health_count.is_empty(), "{rows:?}");

    // The limit caps snapshots (not rows): exactly one seq survives.
    let rows = client.history(Some(1)).unwrap();
    let mut seqs: Vec<u64> = rows.iter().map(|r| r.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), 1, "{seqs:?}");

    // The ring is bounded: many probes later, at most 4 snapshots.
    for _ in 0..8 {
        client.health().unwrap();
    }
    let rows = client.history(None).unwrap();
    let mut seqs: Vec<u64> = rows.iter().map(|r| r.seq).collect();
    seqs.dedup();
    assert!(seqs.len() <= 4, "capacity 4 ring: {seqs:?}");
    client.quit().unwrap();

    // A zero or malformed limit is a protocol error, not a panic.
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.raw_line("HISTORY 0").unwrap();
    assert!(err.starts_with("ERR"), "{err}");
}

fn sharded_health_reports_aggregate_and_per_shard_rows_on(transport: Transport) {
    let router = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(17)
            .transport(transport)
            .event_loops(2)
            .build_sharded(2)
            .unwrap(),
    );
    let owner = router.route_index("skylake");
    let server = Server::start_router(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.train("skylake", &good_set(), &ladder()).unwrap();

    let rows = client.health().unwrap();
    let calibration = calibration_rows(&rows);
    // With >1 shard the listing starts with a merged shard=all row,
    // then the per-shard rows — here only the owner reports.
    assert_eq!(calibration.len(), 2, "{rows:?}");
    let (all_shard, all) = &calibration[0];
    assert_eq!(*all_shard, None, "aggregate first: {rows:?}");
    let (per_shard, per) = &calibration[1];
    assert_eq!(*per_shard, Some(owner), "{rows:?}");
    assert_eq!(all.platform, per.platform);
    assert_eq!(
        all.samples, per.samples,
        "one reporting shard: merge is identity"
    );
    assert!((all.mae - per.mae).abs() < 1e-12);
    assert_eq!(all.state, per.state);
    client.quit().unwrap();
}

#[test]
fn sharded_health_reports_aggregate_and_per_shard_rows() {
    sharded_health_reports_aggregate_and_per_shard_rows_on(Transport::Threaded);
}

#[test]
fn sharded_health_reports_aggregate_and_per_shard_rows_evented() {
    sharded_health_reports_aggregate_and_per_shard_rows_on(Transport::Evented);
}

/// Drive an identical scripted workload through a 2-shard server and
/// return the METRICS exposition plus the retained traces.
fn metrics_and_traces_under_load(transport: Transport) -> (Vec<String>, Vec<Trace>) {
    let router = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(17)
            .transport(transport)
            .event_loops(2)
            .build_sharded(2)
            .unwrap(),
    );
    let server = Server::start_router(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.train("skylake", &good_set(), &ladder()).unwrap();
    let counts: Vec<(String, f64)> = GOOD_SET.iter().map(|n| (n.to_string(), 1.5e10)).collect();
    for _ in 0..4 {
        client.estimate("skylake", &counts).unwrap();
    }
    client.health().unwrap();
    client.history(None).unwrap();
    client.shards().unwrap();

    // While this client is connected the shared gauge reports it. The
    // METRICS span records on drop after the exposition renders, so the
    // first fetch warms the command's own histogram and the second one
    // (used for the per-command assertions below) observes it.
    client.metrics().unwrap();
    let metrics = client.metrics().unwrap();
    let active =
        gauge_value(&metrics, "pmca_serve_active_connections").expect("active_connections exposed");
    assert!(active >= 1.0, "this connection counts: {active}");

    let lines = client.trace(TraceScope::Recent, None).unwrap();
    let traces = Trace::parse_dump(&lines).unwrap();
    client.quit().unwrap();
    (metrics, traces)
}

fn gauge_value(lines: &[String], name: &str) -> Option<f64> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

fn histogram_count(lines: &[String], command: &str) -> u64 {
    lines
        .iter()
        .find_map(|l| {
            l.strip_prefix(&format!(
                r#"pmca_serve_command_seconds_count{{command="{command}"}} "#
            ))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn assert_workload_metrics(metrics: &[String], traces: &[Trace], transport: &str) {
    // Every verb the scripted workload exercised has a per-verb
    // histogram with at least that many samples.
    for (command, at_least) in [
        ("train", 1),
        ("estimate", 4),
        ("health", 1),
        ("history", 1),
        ("shards", 1),
        ("metrics", 1),
    ] {
        let count = histogram_count(metrics, command);
        assert!(
            count >= at_least,
            "{transport}: command={command} count {count} < {at_least}"
        );
    }
    // Shard request counters exist for both slots and the routed verbs
    // landed somewhere.
    let shard_total: f64 = (0..2)
        .map(|shard| {
            gauge_value(
                metrics,
                &format!(r#"pmca_serve_shard_requests_total{{shard="{shard}"}}"#),
            )
            .unwrap_or(0.0)
        })
        .sum();
    assert!(
        shard_total >= 5.0,
        "{transport}: shard requests {shard_total}"
    );

    // Routed request traces carry the owning shard on their request
    // begin event.
    let routed: Vec<&Trace> = traces
        .iter()
        .filter(|t| matches!(t.label.as_str(), "estimate" | "train"))
        .collect();
    assert!(!routed.is_empty(), "{transport}: no routed traces retained");
    for trace in routed {
        assert!(
            trace.events[0]
                .attrs
                .iter()
                .any(|(k, v)| k == "shard" && (v == "0" || v == "1")),
            "{transport}: trace {} lacks shard attribution: {:?}",
            trace.label,
            trace.events[0].attrs
        );
    }
}

#[test]
fn metrics_and_trace_are_consistent_across_transports_with_shards() {
    let (threaded_metrics, threaded_traces) = metrics_and_traces_under_load(Transport::Threaded);
    let (evented_metrics, evented_traces) = metrics_and_traces_under_load(Transport::Evented);
    assert_workload_metrics(&threaded_metrics, &threaded_traces, "threaded");
    assert_workload_metrics(&evented_metrics, &evented_traces, "evented");
    // The evented front end additionally exposes its loop gauges; the
    // command-histogram series themselves are transport-invariant.
    let series = |lines: &[String]| -> Vec<String> {
        let mut names: Vec<String> = lines
            .iter()
            .filter(|l| l.starts_with("pmca_serve_command_seconds_count"))
            .filter_map(|l| l.split_whitespace().next().map(str::to_string))
            .collect();
        names.sort();
        names
    };
    assert_eq!(
        series(&threaded_metrics),
        series(&evented_metrics),
        "same per-verb histogram series under both transports"
    );
}

#[test]
fn shard_replace_returns_the_dead_shards_open_stream_gauge_share() {
    let router = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(17)
            .build_sharded(2)
            .unwrap(),
    );
    let server = Server::start_router(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Deterministically find stream ids for each slot, keeping slot 0
    // (the primary, whose registry serves METRICS) alive.
    let mut on_victim = Vec::new();
    let mut on_primary = Vec::new();
    for i in 0..32 {
        let id = format!("hs-{i}");
        if router.route_index(&id) == 1 && on_victim.len() < 2 {
            on_victim.push(id);
        } else if router.route_index(&id) == 0 && on_primary.is_empty() {
            on_primary.push(id);
        }
        if on_victim.len() == 2 && !on_primary.is_empty() {
            break;
        }
    }
    assert_eq!(on_victim.len(), 2, "hash spread covers both slots");
    for id in on_victim.iter().chain(&on_primary) {
        client.stream_open(id, "dgemm:8000", "skylake", 8).unwrap();
    }
    let metrics = client.metrics().unwrap();
    assert_eq!(
        gauge_value(&metrics, "pmca_stream_open_streams"),
        Some(3.0),
        "{metrics:?}"
    );

    // Replace shard 1 with a fresh service (its own registry): when the
    // dead shard drops, its hub hands back its share of the shared
    // gauge instead of leaking two phantom streams.
    let fresh = Arc::new(
        ServiceConfig::default()
            .workers(1)
            .cache_capacity(64)
            .seed(17)
            .build()
            .unwrap(),
    );
    let dead = router.replace(1, fresh);
    drop(dead);
    let metrics = client.metrics().unwrap();
    assert_eq!(
        gauge_value(&metrics, "pmca_stream_open_streams"),
        Some(1.0),
        "only the primary's stream remains: {metrics:?}"
    );
    client.quit().unwrap();
}
