//! Property-based tests over the statistics and catalog substrates.

// Long-running property tests; enable with `--features proptest`.
#![cfg(feature = "proptest")]

use pmca_cpusim::activity::{Activity, ActivityField};
use pmca_cpusim::catalog::EventCatalog;
use pmca_cpusim::MicroArch;
use pmca_stats::confidence::{student_t_cdf, t_critical};
use pmca_stats::correlation::pearson;
use pmca_stats::descriptive::{mean, quantile, std_dev};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pearson correlation is always in [−1, 1] and exactly ±1 for affine
    /// relations.
    #[test]
    fn pearson_is_bounded_and_saturates_on_affine(
        xs in proptest::collection::vec(-1e6f64..1e6, 3..60),
        slope in prop_oneof![-1e3f64..-1e-3, 1e-3f64..1e3],
        intercept in -1e6f64..1e6,
    ) {
        // Need non-constant xs for the correlation to exist.
        prop_assume!(std_dev(&xs) > 1e-9);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let r = pearson(&xs, &ys).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r), "{r}");
        prop_assert!((r.abs() - 1.0).abs() < 1e-9, "affine should saturate, got {r}");
        prop_assert_eq!(r.signum(), slope.signum());
    }

    /// Quantiles are monotone in q and bounded by the sample extremes.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in proptest::collection::vec(-1e9f64..1e9, 1..80),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    /// The Student-t CDF is a proper CDF: within [0, 1], symmetric about
    /// zero, monotone.
    #[test]
    fn student_t_cdf_is_a_cdf(t in -50.0f64..50.0, df in 1usize..200) {
        let c = student_t_cdf(t, df);
        prop_assert!((0.0..=1.0).contains(&c));
        let mirrored = student_t_cdf(-t, df);
        prop_assert!((c + mirrored - 1.0).abs() < 1e-8, "{c} + {mirrored}");
        let further = student_t_cdf(t + 0.5, df);
        prop_assert!(further >= c - 1e-12);
    }

    /// Critical values grow with the confidence level and shrink with the
    /// degrees of freedom.
    #[test]
    fn t_critical_is_monotone(df in 1usize..100, confidence in 0.5f64..0.995) {
        let t = t_critical(df, confidence);
        prop_assert!(t > 0.0);
        let t_higher_conf = t_critical(df, (confidence + 0.004).min(0.9999));
        prop_assert!(t_higher_conf >= t - 1e-9);
        let t_more_df = t_critical(df + 10, confidence);
        prop_assert!(t_more_df <= t + 1e-9);
    }

    /// Sample mean and standard deviation obey affine-transform rules.
    #[test]
    fn mean_and_std_are_affine_equivariant(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..60),
        a in -100.0f64..100.0,
        b in -1e5f64..1e5,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let scale = mean(&xs).abs().max(1.0);
        prop_assert!((mean(&ys) - (a * mean(&xs) + b)).abs() < 1e-6 * scale.max(b.abs()).max(1.0));
        prop_assert!((std_dev(&ys) - a.abs() * std_dev(&xs)).abs() < 1e-6 * std_dev(&xs).max(1.0));
    }

    /// Every event formula of both catalogs yields finite non-negative
    /// counts on arbitrary physical activity.
    #[test]
    fn all_event_formulas_are_physical(
        cycles in 1e6f64..1e13,
        per_cycle in proptest::collection::vec(0.0f64..4.0, ActivityField::COUNT),
        haswell in proptest::bool::ANY,
    ) {
        let mut activity = Activity::zero();
        for (&field, &rate) in ActivityField::ALL.iter().zip(&per_cycle) {
            activity.set(field, cycles * rate);
        }
        activity.set(ActivityField::Cycles, cycles);
        activity.set(ActivityField::Seconds, cycles / 2.5e9);
        let arch = if haswell { MicroArch::Haswell } else { MicroArch::Skylake };
        let catalog = EventCatalog::for_micro_arch(arch);
        for (id, def) in catalog.iter() {
            let count = def.formula.base_count(&activity);
            prop_assert!(count.is_finite() && count >= 0.0, "{arch} {id} {}: {count}", def.name);
        }
    }
}
