//! Property-based tests over the pipeline's core invariants.

// Long-running property tests; enable with `--features proptest`.
#![cfg(feature = "proptest")]

use pmca_cpusim::app::{Application, CompoundApp, Footprint, SyntheticApp};
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{LinearRegression, Regressor};
use pmca_pmctools::scheduler::{schedule, PROGRAMMABLE_COUNTERS};
use pmca_stats::correlation::mid_ranks;
use proptest::prelude::*;

fn arbitrary_footprint() -> impl Strategy<Value = Footprint> {
    (1.0f64..3_000.0, 0.01f64..9_000.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(
        |(code_kib, data_mib, irr, micro)| Footprint {
            code_kib,
            data_mib,
            branch_irregularity: irr,
            microcode_intensity: micro,
            adaptivity: 0.0, // fixed-work: the precondition of energy additivity
        },
    )
}

fn arbitrary_app(tag: &'static str) -> impl Strategy<Value = SyntheticApp> {
    (
        1e8f64..5e10,
        0.0f64..0.8,
        arbitrary_footprint(),
        0u32..1_000_000,
    )
        .prop_map(move |(instructions, mem, fp, uniq)| {
            SyntheticApp::balanced(&format!("{tag}-{uniq}"), instructions)
                .with_memory_intensity(mem)
                .with_footprint(fp)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dynamic energy of any fixed-work serial composition equals the sum
    /// of the parts (up to run-to-run noise) — for arbitrary application
    /// shapes, not just the built-in workloads.
    #[test]
    fn energy_is_additive_for_arbitrary_fixed_work_apps(
        a in arbitrary_app("pa"),
        b in arbitrary_app("pb"),
        seed in 0u64..10_000,
    ) {
        let mut machine = Machine::new(PlatformSpec::intel_haswell(), seed);
        let avg = |m: &mut Machine, app: &dyn Application| -> f64 {
            (0..4).map(|_| m.run(app).dynamic_energy_joules).sum::<f64>() / 4.0
        };
        let ea = avg(&mut machine, &a);
        let eb = avg(&mut machine, &b);
        let compound = CompoundApp::pair(a, b);
        let eab = avg(&mut machine, &compound);
        let rel = ((ea + eb) - eab).abs() / (ea + eb);
        prop_assert!(rel < 0.03, "{ea} + {eb} vs {eab} (rel {rel})");
    }

    /// Every schedule of a random event subset is valid: group sizes within
    /// the counter budget, solo/pair limits respected, each event scheduled
    /// exactly once.
    #[test]
    fn schedules_of_random_subsets_are_valid(
        indices in proptest::collection::vec(0usize..385, 1..60),
        haswell in proptest::bool::ANY,
    ) {
        let arch = if haswell {
            pmca_cpusim::MicroArch::Haswell
        } else {
            pmca_cpusim::MicroArch::Skylake
        };
        let catalog = pmca_cpusim::catalog::EventCatalog::for_micro_arch(arch);
        let ids: Vec<pmca_cpusim::EventId> = indices
            .into_iter()
            .map(|i| pmca_cpusim::EventId(i % catalog.len()))
            .collect();
        let groups = schedule(&catalog, &ids).unwrap();

        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            prop_assert!(!group.events.is_empty());
            prop_assert!(group.events.len() <= PROGRAMMABLE_COUNTERS);
            for &id in &group.events {
                prop_assert!(seen.insert(id), "{id} scheduled twice");
                let max = catalog.event(id).constraint.max_group_size();
                prop_assert!(group.events.len() <= max, "{id} group-size violation");
            }
        }
        for &id in &ids {
            let fixed = catalog.event(id).constraint == pmca_cpusim::CounterConstraint::Fixed;
            prop_assert!(fixed || seen.contains(&id), "{id} missing");
        }
    }

    /// NNLS coefficients are non-negative for arbitrary data, and the
    /// zero-intercept constraint holds.
    #[test]
    fn nnls_coefficients_are_always_nonnegative(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3),
            4..40
        ),
        slope in -5.0f64..5.0,
    ) {
        let y: Vec<f64> = rows.iter().map(|r| slope * r[0] + 0.3 * r[1] - 0.7 * r[2]).collect();
        let mut lr = LinearRegression::paper_constrained();
        lr.fit(&rows, &y).unwrap();
        prop_assert_eq!(lr.intercept(), 0.0);
        for &c in lr.coefficients() {
            prop_assert!(c >= 0.0, "negative coefficient {}", c);
        }
    }

    /// Mid-ranks are a permutation-invariant of the data: sum of ranks is
    /// always n(n+1)/2, ties share ranks.
    #[test]
    fn mid_ranks_sum_is_invariant(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let ranks = mid_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Activity scaling commutes with composition: running an app twice as
    /// a compound produces (within noise) twice the counts of committed
    /// events.
    #[test]
    fn self_composition_doubles_committed_counts(
        app in arbitrary_app("sc"),
        seed in 0u64..10_000,
    ) {
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), seed);
        let id = machine.catalog().id("MEM_INST_RETIRED_ALL_STORES").unwrap();
        let solo: f64 = (0..4).map(|_| machine.run(&app).count(id)).sum::<f64>() / 4.0;
        let twice = CompoundApp::pair(app.clone(), app);
        let double: f64 = (0..4).map(|_| machine.run(&twice).count(id)).sum::<f64>() / 4.0;
        let rel = (double - 2.0 * solo).abs() / (2.0 * solo);
        prop_assert!(rel < 0.03, "solo {solo}, composed {double} (rel {rel})");
    }

    /// Every run of an arbitrary application produces finite, non-negative
    /// counts for every catalog event, and finite positive energy and
    /// duration — the physicality invariant of the whole simulator.
    #[test]
    fn runs_are_always_physical(
        app in arbitrary_app("phys"),
        seed in 0u64..10_000,
        haswell in proptest::bool::ANY,
    ) {
        let spec = if haswell {
            PlatformSpec::intel_haswell()
        } else {
            PlatformSpec::intel_skylake()
        };
        let mut machine = Machine::new(spec, seed);
        let record = machine.run(&app);
        prop_assert!(record.duration_s.is_finite() && record.duration_s > 0.0);
        prop_assert!(record.dynamic_energy_joules.is_finite() && record.dynamic_energy_joules >= 0.0);
        for (i, &c) in record.counts.iter().enumerate() {
            prop_assert!(c.is_finite() && c >= 0.0, "event {i}: {c}");
        }
        for p in &record.phase_powers {
            prop_assert!(p.dynamic_watts.is_finite() && p.dynamic_watts >= 0.0);
            prop_assert!(p.dynamic_watts <= machine.spec().max_dynamic_watts() * 1.3,
                "{} W exceeds budget", p.dynamic_watts);
        }
    }

    /// Eq. 1 of the paper is symmetric in the bases, scale-invariant, and
    /// zero exactly on additive triples.
    #[test]
    fn equation_1_algebraic_properties(
        b1 in 1.0f64..1e12,
        b2 in 1.0f64..1e12,
        c in 0.0f64..2e12,
        scale in 0.001f64..1e3,
    ) {
        use pmca_additivity::AdditivityTest;
        let e = AdditivityTest::equation_1_error_pct(b1, b2, c);
        let e_swapped = AdditivityTest::equation_1_error_pct(b2, b1, c);
        prop_assert!((e - e_swapped).abs() < 1e-9 * e.max(1.0));
        let e_scaled = AdditivityTest::equation_1_error_pct(b1 * scale, b2 * scale, c * scale);
        prop_assert!((e - e_scaled).abs() < 1e-6 * e.max(1.0), "{e} vs {e_scaled}");
        let exact = AdditivityTest::equation_1_error_pct(b1, b2, b1 + b2);
        prop_assert!(exact.abs() < 1e-9);
    }

    /// The multiplexed collector never loses or invents events, never
    /// goes negative, and always costs exactly one run.
    #[test]
    fn multiplexer_output_is_well_formed(
        app in arbitrary_app("mux"),
        seed in 0u64..10_000,
        n_events in 1usize..12,
    ) {
        use pmca_pmctools::multiplex::Multiplexer;
        let mut machine = Machine::new(PlatformSpec::intel_skylake(), seed);
        let all = machine.catalog().all_ids();
        let ids: Vec<pmca_cpusim::EventId> =
            (0..n_events).map(|i| all[(i * 37 + seed as usize) % all.len()]).collect();
        let before = machine.runs_executed();
        let pmcs = Multiplexer::default().collect(&mut machine, &app, &ids).unwrap();
        prop_assert_eq!(machine.runs_executed() - before, 1);
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        prop_assert_eq!(pmcs.values.len(), unique.len());
        for (&id, &v) in &pmcs.values {
            prop_assert!(v.is_finite() && v >= 0.0, "{id}: {v}");
        }
    }
}
