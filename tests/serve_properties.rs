//! Property tests for the serving line protocol (ISSUE satellite).
//!
//! The protocol is the only part of the stack where data survives a
//! lossy trip through text, so it gets sampled coverage on top of the
//! unit tests: every well-formed [`Request`] must survive
//! `parse(to_line(..))` bit-for-bit, and every [`Estimate`] must survive
//! `parse_estimate_reply(ok_estimate(..))`. The same goes for the trace
//! dump the `TRACE` command ships: every rendered JSONL event must parse
//! back losslessly, including escape-laden attribute values. Uses the
//! in-repo `proptest` shim (deterministic per-test streams, no
//! shrinking).

use pmca_obs::trace::{EventKind, TraceEvent};
use pmca_serve::engine::Estimate;
use pmca_serve::protocol::{ok_estimate, parse_estimate_reply, parse_ok_fields};
use pmca_serve::{Request, Tier, Trace, TraceScope};
use proptest::prelude::*;

/// A protocol-safe identifier: non-empty, alphanumeric plus `_`/`-`/`:`
/// subsets depending on position. No whitespace, `=`, or commas — those
/// are the protocol's own separators, which well-formed requests never
/// embed in names.
fn ident(max_len: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
    collection::vec(0usize..ALPHABET.len(), 1..max_len).prop_map(|indexes| {
        indexes
            .into_iter()
            .map(|i| char::from(ALPHABET[i]))
            .collect()
    })
}

/// An app spec like `dgemm:11500` — the colon exercises non-alphanumeric
/// payload bytes the splitter must pass through untouched.
fn app_spec() -> impl Strategy<Value = String> {
    (ident(10), 1u64..1_000_000).prop_map(|(name, size)| format!("{name}:{size}"))
}

/// Finite, Display-round-trippable counter values (Rust's shortest-digit
/// float formatting guarantees `parse(format(v)) == v` for any finite v).
fn count_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e12..1.0e12,
        0.0..1.0,
        Just(0.0),
        Just(4.0e10),
        (1.0..2.0).prop_map(|v| v * 1.0e-9),
    ]
}

/// Text that stresses the JSONL escaper: quotes, backslashes, control
/// bytes, separators, and multi-byte UTF-8.
fn wire_text() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', '→', '=', ',',
        '{', '}', ':',
    ];
    collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|indexes| indexes.into_iter().map(|i| PALETTE[i]).collect())
}

fn arbitrary_event() -> impl Strategy<Value = TraceEvent> {
    (
        wire_text(),
        0usize..3,
        0u64..10_000_000_000,
        collection::vec((wire_text(), wire_text()), 0..4),
    )
        .prop_map(|(name, kind, at_ns, attrs)| TraceEvent {
            name,
            kind: [EventKind::Begin, EventKind::End, EventKind::Instant][kind],
            at_ns,
            attrs,
        })
}

/// Either inference tier — round-trip coverage must include `tier=fixed`
/// since it changes the encoded line.
fn tier() -> impl Strategy<Value = Tier> {
    (0usize..2).prop_map(|i| [Tier::F64, Tier::Fixed][i])
}

fn arbitrary_request() -> impl Strategy<Value = Request> {
    let estimate = (
        ident(12),
        collection::vec((ident(16), count_value()), 1..6),
        tier(),
    )
        .prop_map(|(platform, counts, tier)| Request::Estimate {
            platform,
            counts,
            tier,
        });
    let estimate_app =
        (ident(12), app_spec(), tier()).prop_map(|(platform, app, tier)| Request::EstimateApp {
            platform,
            app,
            tier,
        });
    let train = (
        ident(12),
        collection::vec(ident(16), 1..5),
        collection::vec(app_spec(), 1..5),
    )
        .prop_map(|(platform, pmcs, apps)| Request::Train {
            platform,
            pmcs,
            apps,
        });
    let trace = (
        0usize..3,
        prop_oneof![Just(None), (1usize..10_000).prop_map(Some)],
    )
        .prop_map(|(scope, limit)| Request::Trace {
            scope: [TraceScope::Recent, TraceScope::Slow, TraceScope::Slowest][scope],
            limit,
        });
    prop_oneof![
        estimate,
        estimate_app,
        train,
        trace,
        Just(Request::Models),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn requests_round_trip_through_the_wire_format(request in arbitrary_request()) {
        let line = request.to_line();
        let parsed = Request::parse(&line)
            .unwrap_or_else(|e| panic!("{line:?} does not parse back: {e}"));
        prop_assert_eq!(parsed, request);
    }

    #[test]
    fn estimate_replies_round_trip(
        joules in count_value(),
        ci in (0.0..1.0e9),
        family in ident(10),
        version in 1u32..10_000,
    ) {
        let estimate = Estimate {
            joules,
            ci_half_width: ci,
            family: family.into(),
            version,
        };
        let reply = ok_estimate(&estimate);
        let parsed = parse_estimate_reply(&reply)
            .unwrap_or_else(|e| panic!("{reply:?} does not parse back: {e}"));
        prop_assert_eq!(parsed, estimate);
    }

    #[test]
    fn ok_fields_survive_arbitrary_pairs(
        pairs in collection::vec((ident(10), ident(10)), 0..8),
    ) {
        let line = std::iter::once("OK".to_string())
            .chain(pairs.iter().map(|(k, v)| format!("{k}={v}")))
            .collect::<Vec<_>>()
            .join(" ");
        let fields = parse_ok_fields(&line).unwrap();
        prop_assert_eq!(fields.len(), pairs.len());
        for ((k, v), (pk, pv)) in fields.iter().zip(&pairs) {
            prop_assert_eq!(*k, pk.as_str());
            prop_assert_eq!(*v, pv.as_str());
        }
    }

    #[test]
    fn trace_jsonl_round_trips_losslessly(
        id in 1u64..1_000_000_000,
        connection in 0u64..1_000_000,
        label in wire_text(),
        total_ns in 0u64..u64::MAX,
        events in collection::vec(arbitrary_event(), 1..8),
    ) {
        let trace = Trace { id, connection, label, total_ns, events };
        let lines = trace.to_jsonl();
        let back = Trace::from_jsonl(&lines)
            .unwrap_or_else(|e| panic!("{lines:?} does not parse back: {e}"));
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(0u8..128, 0..40),
    ) {
        let line: String = bytes.into_iter().map(char::from).collect();
        // Any outcome is fine; the parser just must not panic, and an
        // accepted request must re-encode.
        if let Ok(request) = Request::parse(&line) {
            let _ = request.to_line();
        }
    }
}
