//! End-to-end serving round trip (ISSUE satellite): train an online model
//! on the simulated Skylake, register it, start a TCP server on an
//! ephemeral port, and verify that estimates served over the wire match
//! the direct [`OnlineModel`] arithmetic — and that the run cache earns
//! hits on repeated app-level queries.
//!
//! Every scenario runs under BOTH transports — the original
//! thread-per-connection model and the nonblocking evented front end —
//! asserting the transports are observably equivalent on the full
//! protocol surface.

use pmca_core::online::OnlineModel;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_powermeter::{HclWattsUp, Methodology};
use pmca_serve::{Client, EnergyService, Server, ServiceConfig, Trace, TraceScope, Transport};
use pmca_workloads::parse::app_from_spec;
use std::sync::Arc;
use std::thread;

fn service(workers: usize, cache_capacity: usize, transport: Transport) -> EnergyService {
    ServiceConfig::default()
        .workers(workers)
        .cache_capacity(cache_capacity)
        .seed(SEED)
        .transport(transport)
        .event_loops(2)
        .build()
        .unwrap()
}

const SEED: u64 = 123;

const GOOD_SET: [&str; 4] = [
    "UOPS_EXECUTED_CORE",
    "FP_ARITH_INST_RETIRED_DOUBLE",
    "MEM_INST_RETIRED_ALL_STORES",
    "UOPS_DISPATCHED_PORT_PORT_4",
];

fn ladder() -> Vec<String> {
    let mut specs = Vec::new();
    for i in 0..12 {
        specs.push(format!("dgemm:{}", 7_000 + 1_800 * i));
        specs.push(format!("fft:{}", 23_000 + 1_200 * i));
    }
    specs
}

fn good_set() -> Vec<String> {
    GOOD_SET.iter().map(|s| s.to_string()).collect()
}

/// Train the reference model exactly the way the service does: fresh
/// machine from the same seed, same methodology, same workload ladder —
/// so coefficients are bit-identical to the served model's.
fn reference_model() -> OnlineModel {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), SEED);
    let mut meter = HclWattsUp::with_methodology(&machine, SEED, Methodology::quick());
    let apps: Vec<_> = ladder().iter().map(|s| app_from_spec(s).unwrap()).collect();
    let refs: Vec<&dyn pmca_cpusim::app::Application> = apps.iter().map(|a| a.as_ref()).collect();
    OnlineModel::train(&mut machine, &mut meter, &GOOD_SET, &refs).unwrap()
}

fn served_estimates_match_the_direct_model_on(transport: Transport) {
    let service = Arc::new(service(4, 64, transport));
    let stored = service
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    assert_eq!(stored.version, 1);
    assert_eq!(stored.key.family, "online");

    let reference = reference_model();
    let spec = reference.to_spec();
    assert_eq!(spec.pmc_names, good_set(), "feature order preserved");

    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Several count vectors spanning the training range, each estimated
    // from its own client thread.
    let probes: Vec<Vec<f64>> = (1..=6)
        .map(|i| {
            let scale = f64::from(i) * 0.5e10;
            vec![4.0 * scale, 1.5 * scale, 0.4 * scale, 0.4 * scale]
        })
        .collect();
    let handles: Vec<_> = probes
        .iter()
        .cloned()
        .map(|counts| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let named: Vec<(String, f64)> = GOOD_SET
                    .iter()
                    .zip(&counts)
                    .map(|(n, &v)| (n.to_string(), v))
                    .collect();
                let estimate = client.estimate("skylake", &named).unwrap();
                client.quit().unwrap();
                (counts, estimate)
            })
        })
        .collect();

    for handle in handles {
        let (counts, served) = handle.join().unwrap();
        let direct = reference.estimate_from_counts(&counts);
        let tolerance = direct.abs().max(1.0) * 1e-9;
        assert!(
            (served.joules - direct).abs() <= tolerance,
            "served {} vs direct {direct}",
            served.joules
        );
        assert_eq!(served.family, "online");
        assert_eq!(served.version, 1);
        assert!(served.ci_half_width >= 0.0);
    }

    let stats = service.stats();
    assert_eq!(stats.served, 6);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.workers, 4);
}

#[test]
fn served_estimates_match_the_direct_model() {
    served_estimates_match_the_direct_model_on(Transport::Threaded);
}

#[test]
fn served_estimates_match_the_direct_model_evented() {
    served_estimates_match_the_direct_model_on(Transport::Evented);
}

fn repeated_app_queries_hit_the_run_cache_on(transport: Transport) {
    let service = Arc::new(service(2, 64, transport));
    service
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let first = client.estimate_app("skylake", "dgemm:11500").unwrap();
    assert!(first.joules > 0.0 && first.joules.is_finite());
    let before = service.stats();
    assert_eq!(before.cache_misses, 1);
    assert_eq!(before.cache_hits, 0);

    for _ in 0..3 {
        let again = client.estimate_app("skylake", "dgemm:11500").unwrap();
        assert_eq!(again, first, "cached counts make repeats identical");
    }
    let after = service.stats();
    assert_eq!(after.cache_misses, 1, "only the first query collects");
    assert_eq!(after.cache_hits, 3, "every repeat is a cache hit");

    // A different workload misses again.
    client.estimate_app("skylake", "fft:25000").unwrap();
    assert_eq!(service.stats().cache_misses, 2);
    client.quit().unwrap();
}

#[test]
fn repeated_app_queries_hit_the_run_cache() {
    repeated_app_queries_hit_the_run_cache_on(Transport::Threaded);
}

#[test]
fn repeated_app_queries_hit_the_run_cache_evented() {
    repeated_app_queries_hit_the_run_cache_on(Transport::Evented);
}

fn training_and_introspection_work_over_the_wire_on(transport: Transport) {
    let service = Arc::new(service(2, 32, transport));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // No model yet: app estimation fails with a protocol-level error.
    assert!(client.estimate_app("skylake", "dgemm:9000").is_err());

    let version = client.train("skylake", &good_set(), &ladder()).unwrap();
    assert_eq!(version, 1);
    let version = client.train("skylake", &good_set(), &ladder()).unwrap();
    assert_eq!(version, 2, "retraining bumps the registry version");

    let models = client.models().unwrap();
    assert_eq!(models.len(), 2);
    assert!(
        models.iter().all(|line| line.contains("skylake online")),
        "{models:?}"
    );

    let estimate = client.estimate_app("skylake", "dgemm:10000").unwrap();
    assert_eq!(estimate.version, 2, "the latest version serves");

    let stats = client.stats().unwrap();
    let get = |key: &str| {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing {key} in {stats:?}"))
    };
    assert_eq!(get("models"), "2");
    assert_eq!(get("workers"), "2");

    // SHARDS reports the single-shard topology owning both platforms.
    let shards = client.shards().unwrap();
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].shard, 0);
    assert_eq!(shards[0].owns, vec!["haswell", "skylake"]);
    assert_eq!(shards[0].models, 2);
    client.quit().unwrap();
}

#[test]
fn training_and_introspection_work_over_the_wire() {
    training_and_introspection_work_over_the_wire_on(Transport::Threaded);
}

#[test]
fn training_and_introspection_work_over_the_wire_evented() {
    training_and_introspection_work_over_the_wire_on(Transport::Evented);
}

fn metrics_over_the_wire_cover_commands_and_caches_on(transport: Transport) {
    let service = Arc::new(service(2, 32, transport));
    service
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Exercise the estimate path (one miss + one hit) so the command
    // histogram and cache counters have something to show.
    client.estimate_app("skylake", "dgemm:9500").unwrap();
    client.estimate_app("skylake", "dgemm:9500").unwrap();

    let lines = client.metrics().unwrap();
    let has = |prefix: &str| lines.iter().any(|l| l.starts_with(prefix));
    assert!(
        has(r#"pmca_serve_command_seconds{command="estimate-app",quantile="0.99"}"#),
        "no estimate-app p99 in {lines:?}"
    );
    assert!(has("pmca_serve_train_seconds"), "{lines:?}");
    assert!(has("pmca_cache_hits_total"), "{lines:?}");
    assert!(has("pmca_cache_misses_total"), "{lines:?}");
    assert!(has("pmca_engine_compute_seconds"), "{lines:?}");
    assert!(
        has(r#"pmca_train_fits_total{family="linear"}"#),
        "{lines:?}"
    );

    // STATS now reports evictions alongside hits/misses.
    let stats = client.stats().unwrap();
    assert!(
        stats.iter().any(|(k, _)| k == "cache-evictions"),
        "{stats:?}"
    );
    client.quit().unwrap();
}

#[test]
fn metrics_over_the_wire_cover_commands_and_caches() {
    metrics_over_the_wire_cover_commands_and_caches_on(Transport::Threaded);
}

#[test]
fn metrics_over_the_wire_cover_commands_and_caches_evented() {
    metrics_over_the_wire_cover_commands_and_caches_on(Transport::Evented);
}

fn traces_over_the_wire_break_requests_into_stages_on(transport: Transport) {
    // Threshold 0 ms: every request counts as slow, so both requests
    // below land in the slow ring regardless of machine speed.
    let service = Arc::new(
        ServiceConfig::default()
            .workers(2)
            .cache_capacity(64)
            .seed(SEED)
            .trace_slow_ms(0)
            .transport(transport)
            .event_loops(2)
            .build()
            .unwrap(),
    );
    service
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.estimate_app("skylake", "dgemm:11500").unwrap(); // miss: simulates
    client.estimate_app("skylake", "dgemm:11500").unwrap(); // repeat: cache hit

    let lines = client.trace(TraceScope::Slow, None).unwrap();
    let traces = Trace::parse_dump(&lines).unwrap();
    assert!(traces.len() >= 2, "expected both requests, got {traces:?}");

    let miss = traces
        .iter()
        .find(|t| t.events.iter().any(|e| e.name == "cache.miss"))
        .expect("no miss trace retained");
    assert_eq!(miss.label, "estimate-app");
    assert!(miss.connection > 0, "server did not stamp a connection id");
    let stages = miss.span_durations();
    let stage = |name: &str| {
        stages
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no {name} stage in {stages:?}"))
            .1
    };
    // The full breakdown the ISSUE asks for: queue wait, cache lookup,
    // compute, and the substrate (simulator runs inside the cache fill).
    for name in [
        "engine.queue",
        "engine.compute",
        "cache.lookup",
        "cache.fill",
        "sim.run",
        "collect.sweep",
    ] {
        assert!(stage(name) <= miss.total_ns, "{name} exceeds the total");
    }

    let hit = traces
        .iter()
        .find(|t| t.events.iter().any(|e| e.name == "cache.hit"))
        .expect("no hit trace retained");
    assert!(
        !hit.events.iter().any(|e| e.name == "cache.fill"),
        "cache hit should not fill: {hit:?}"
    );

    // SLOWEST returns exactly one trace, parseable the same way.
    let slowest = Trace::parse_dump(&client.trace(TraceScope::Slowest, None).unwrap()).unwrap();
    assert_eq!(slowest.len(), 1);
    assert!(slowest[0].total_ns >= traces.iter().map(|t| t.total_ns).min().unwrap());
    client.quit().unwrap();
}

/// Forcing the scalar kernels (the `PMCA_SIMD=scalar` escape hatch) on a
/// live server must not change a single served bit: SIMD dispatch is a
/// throughput lever, never an accuracy knob. `pmca_simd::force` is the
/// in-process equivalent of the env override, which is latched before
/// the test harness could set it.
#[test]
fn forced_scalar_kernels_serve_identical_estimates() {
    let service = Arc::new(service(2, 32, Transport::Threaded));
    service
        .train_online("skylake", &good_set(), &ladder())
        .unwrap();
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let named: Vec<(String, f64)> = GOOD_SET
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), 1.0e10 + i as f64 * 2.5e9))
        .collect();
    let native = client.estimate("skylake", &named).unwrap();

    let previous = pmca_simd::force(pmca_simd::Isa::Scalar);
    assert_eq!(pmca_simd::Isa::active(), pmca_simd::Isa::Scalar);
    let scalar = client.estimate("skylake", &named).unwrap();
    let restored = pmca_simd::force(previous);
    assert_eq!(restored, pmca_simd::Isa::Scalar, "swap returns what ran");
    assert_eq!(pmca_simd::Isa::active(), previous, "dispatch restored");

    assert_eq!(
        scalar.joules.to_bits(),
        native.joules.to_bits(),
        "scalar {} vs native {}",
        scalar.joules,
        native.joules
    );
    assert_eq!(scalar.version, native.version);
    client.quit().unwrap();
}

#[test]
fn traces_over_the_wire_break_requests_into_stages() {
    traces_over_the_wire_break_requests_into_stages_on(Transport::Threaded);
}

#[test]
fn traces_over_the_wire_break_requests_into_stages_evented() {
    traces_over_the_wire_break_requests_into_stages_on(Transport::Evented);
}
