//! Cross-crate integration tests: exercise the full measurement pipeline —
//! simulator → power meter → counter scheduler/collector → additivity
//! checker → dataset → models — and check the invariants that hold across
//! crate boundaries.

use pmca_additivity::{AdditivityChecker, AdditivityTest, CompoundCase, Verdict};
use pmca_core::measure::build_dataset;
use pmca_cpusim::app::Application;
use pmca_cpusim::{Machine, PlatformSpec};
use pmca_mlkit::{LinearRegression, PredictionErrors, Regressor};
use pmca_powermeter::{HclWattsUp, Methodology};
use pmca_stats::correlation::pearson;
use pmca_workloads::suite::class_b_compound_pairs;
use pmca_workloads::{Dgemm, Fft2d};

/// Energy measured through the sampled/noisy/calibrated meter stays within
/// a few percent of the simulator's ground truth for long-running apps.
#[test]
fn meter_matches_simulator_ground_truth() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 1);
    let mut meter = HclWattsUp::new(&machine, 1);
    for n in [10_000, 16_000, 24_000] {
        let app = Dgemm::new(n);
        let measured = meter.measure_dynamic_energy(&mut machine, &app).mean_joules;
        let truth = machine.run(&app).dynamic_energy_joules;
        let rel = (measured - truth).abs() / truth;
        assert!(
            rel < 0.08,
            "n={n}: meter {measured} vs truth {truth} ({rel:.3})"
        );
    }
}

/// The foundation of the paper: measured dynamic energy is additive under
/// serial composition, within measurement noise, for fixed-work kernels.
#[test]
fn measured_energy_is_additive_for_dgemm_fft_compounds() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 2);
    let mut meter = HclWattsUp::new(&machine, 2);
    for (dn, fn_) in [(8_000, 23_000), (12_000, 26_000)] {
        let a = Dgemm::new(dn);
        let b = Fft2d::new(fn_);
        let ea = meter.measure_dynamic_energy(&mut machine, &a).mean_joules;
        let eb = meter.measure_dynamic_energy(&mut machine, &b).mean_joules;
        let compound = pmca_cpusim::app::CompoundApp::pair(a, b);
        let eab = meter
            .measure_dynamic_energy(&mut machine, &compound)
            .mean_joules;
        let err = ((ea + eb) - eab).abs() / (ea + eb);
        assert!(err < 0.05, "({dn},{fn_}): {ea}+{eb} vs {eab} → {err:.3}");
    }
}

/// Energy-style PMCs track energy across problem sizes; the additivity
/// checker confirms the X/Y asymmetry of the paper's Table 6 end to end.
#[test]
fn additive_set_passes_and_nonadditive_set_fails() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 3);
    let events = machine
        .catalog()
        .ids(&[
            "FP_ARITH_INST_RETIRED_DOUBLE",
            "MEM_INST_RETIRED_ALL_STORES",
            "UOPS_EXECUTED_CORE",
            "IDQ_MS_UOPS",
            "ARITH_DIVIDER_COUNT",
            "ICACHE_64B_IFTAG_MISS",
        ])
        .unwrap();
    let cases: Vec<CompoundCase> = class_b_compound_pairs(8, 3)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let report = AdditivityChecker::new(AdditivityTest::default())
        .check(&mut machine, &events, &cases)
        .unwrap();
    for entry in report.entries() {
        let expect_additive = matches!(
            entry.name.as_str(),
            "FP_ARITH_INST_RETIRED_DOUBLE" | "MEM_INST_RETIRED_ALL_STORES" | "UOPS_EXECUTED_CORE"
        );
        if expect_additive {
            assert_eq!(
                entry.verdict,
                Verdict::Additive,
                "{}: {:.2}%",
                entry.name,
                entry.max_error_pct
            );
            assert!(
                entry.max_error_pct < 1.0,
                "{}: {:.2}%",
                entry.name,
                entry.max_error_pct
            );
        } else {
            assert_eq!(
                entry.verdict,
                Verdict::NonAdditive,
                "{}: {:.2}%",
                entry.name,
                entry.max_error_pct
            );
        }
    }
}

/// A dataset built through the whole stack supports an accurate linear
/// model on additive features: the end-to-end sanity check that energy is
/// actually learnable from the simulated PMCs.
#[test]
fn linear_model_on_additive_pmcs_predicts_energy_well() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 4);
    let mut meter = HclWattsUp::with_methodology(&machine, 4, Methodology::quick());
    let events = machine
        .catalog()
        .ids(&[
            "UOPS_EXECUTED_CORE",
            "FP_ARITH_INST_RETIRED_DOUBLE",
            "MEM_INST_RETIRED_ALL_STORES",
        ])
        .unwrap();

    let apps: Vec<Box<dyn Application>> = (0..24)
        .map(|i| {
            if i % 2 == 0 {
                Box::new(Dgemm::new(7_000 + 900 * i)) as Box<dyn Application>
            } else {
                Box::new(Fft2d::new(23_000 + 600 * i)) as Box<dyn Application>
            }
        })
        .collect();
    let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
    let dataset = build_dataset(&mut machine, &mut meter, &refs, &events, 1).unwrap();
    let (train, test) = dataset.split_exact(6).unwrap();

    let mut lr = LinearRegression::paper_constrained();
    lr.fit(train.rows(), train.targets()).unwrap();
    let errors = PredictionErrors::evaluate(&lr, test.rows(), test.targets());
    assert!(errors.avg < 30.0, "avg error {:.1}%", errors.avg);
}

/// The correlation trap: a non-additive PMC can still be highly correlated
/// with energy on base applications — which is exactly why correlation-only
/// selection goes wrong.
#[test]
fn divider_is_correlated_yet_non_additive() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 5);
    let mut meter = HclWattsUp::with_methodology(&machine, 5, Methodology::quick());
    let div = machine.catalog().ids(&["ARITH_DIVIDER_COUNT"]).unwrap();

    let apps: Vec<Box<dyn Application>> = (0..16)
        .map(|i| Box::new(Dgemm::new(7_000 + 1_500 * i)) as Box<dyn Application>)
        .collect();
    let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref()).collect();
    let dataset = build_dataset(&mut machine, &mut meter, &refs, &div, 1).unwrap();
    let corr = pearson(&dataset.column(0), dataset.targets()).unwrap();
    assert!(
        corr > 0.9,
        "divider should correlate with energy on DGEMM sweeps, got {corr:.3}"
    );

    let cases: Vec<CompoundCase> = class_b_compound_pairs(6, 5)
        .into_iter()
        .map(|(a, b)| CompoundCase::new(a, b))
        .collect();
    let report = AdditivityChecker::new(AdditivityTest::default())
        .check(&mut machine, &div, &cases)
        .unwrap();
    assert_eq!(report.entries()[0].verdict, Verdict::NonAdditive);
}
