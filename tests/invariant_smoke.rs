//! Fixed-input smoke tests mirroring the invariants of the property-test
//! suites (`substrate_properties`, `pipeline_properties`).
//!
//! The property suites are gated behind the off-by-default `proptest`
//! feature; this file keeps one deterministic case of every invariant in
//! the default `cargo test` run so regressions surface without opting in.

use pmca_cpusim::activity::{Activity, ActivityField};
use pmca_cpusim::app::{Application, CompoundApp, Footprint, SyntheticApp};
use pmca_cpusim::catalog::EventCatalog;
use pmca_cpusim::{CounterConstraint, EventId, Machine, MicroArch, PlatformSpec};
use pmca_mlkit::{LinearRegression, Regressor};
use pmca_pmctools::multiplex::Multiplexer;
use pmca_pmctools::scheduler::{schedule, PROGRAMMABLE_COUNTERS};
use pmca_stats::confidence::{student_t_cdf, t_critical};
use pmca_stats::correlation::{mid_ranks, pearson};
use pmca_stats::descriptive::{mean, quantile, std_dev};

fn sample_app(name: &str, memory_intensity: f64) -> SyntheticApp {
    SyntheticApp::balanced(name, 8e9)
        .with_memory_intensity(memory_intensity)
        .with_footprint(Footprint {
            code_kib: 120.0,
            data_mib: 64.0,
            branch_irregularity: 0.3,
            microcode_intensity: 0.1,
            adaptivity: 0.0,
        })
}

#[test]
fn pearson_saturates_on_affine_relations() {
    let xs: Vec<f64> = (0..40).map(|i| i as f64 * 3.5 - 20.0).collect();
    let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 7.0).collect();
    let down: Vec<f64> = xs.iter().map(|x| -0.5 * x + 1.0).collect();
    let r_up = pearson(&xs, &up).unwrap();
    let r_down = pearson(&xs, &down).unwrap();
    assert!((r_up - 1.0).abs() < 1e-9, "{r_up}");
    assert!((r_down + 1.0).abs() < 1e-9, "{r_down}");
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    let xs = vec![4.0, -1.0, 9.5, 2.25, 0.0, 7.125, -3.5];
    let mut prev = f64::NEG_INFINITY;
    for step in 0..=10 {
        let q = quantile(&xs, step as f64 / 10.0);
        assert!(q >= prev - 1e-12, "quantile not monotone at step {step}");
        assert!((-3.5..=9.5).contains(&q), "{q} outside sample range");
        prev = q;
    }
}

#[test]
fn student_t_cdf_behaves_like_a_cdf() {
    for &df in &[1usize, 5, 30, 120] {
        let mut prev = 0.0;
        for step in -20..=20 {
            let t = step as f64 * 0.5;
            let c = student_t_cdf(t, df);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12, "not monotone at t={t}, df={df}");
            assert!(
                (c + student_t_cdf(-t, df) - 1.0).abs() < 1e-8,
                "asymmetric at t={t}"
            );
            prev = c;
        }
    }
}

#[test]
fn t_critical_is_monotone_in_confidence_and_df() {
    let base = t_critical(10, 0.9);
    assert!(base > 0.0);
    assert!(t_critical(10, 0.95) > base);
    assert!(t_critical(40, 0.9) < base);
}

#[test]
fn mean_and_std_are_affine_equivariant() {
    let xs = vec![1.0, 4.0, -2.0, 8.0, 3.0, 3.0];
    let (a, b) = (-2.5, 11.0);
    let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
    assert!((mean(&ys) - (a * mean(&xs) + b)).abs() < 1e-9);
    assert!((std_dev(&ys) - a.abs() * std_dev(&xs)).abs() < 1e-9);
}

#[test]
fn event_formulas_are_physical_on_both_catalogs() {
    let cycles = 3.7e10;
    for arch in [MicroArch::Haswell, MicroArch::Skylake] {
        let mut activity = Activity::zero();
        for (i, &field) in ActivityField::ALL.iter().enumerate() {
            activity.set(field, cycles * (0.05 + 0.11 * i as f64 % 3.9));
        }
        activity.set(ActivityField::Cycles, cycles);
        activity.set(ActivityField::Seconds, cycles / 2.5e9);
        let catalog = EventCatalog::for_micro_arch(arch);
        for (id, def) in catalog.iter() {
            let count = def.formula.base_count(&activity);
            assert!(
                count.is_finite() && count >= 0.0,
                "{arch} {id} {}: {count}",
                def.name
            );
        }
    }
}

#[test]
fn energy_is_additive_for_fixed_work_apps() {
    let mut machine = Machine::new(PlatformSpec::intel_haswell(), 41);
    let a = sample_app("smoke-a", 0.15);
    let b = sample_app("smoke-b", 0.55);
    let avg = |m: &mut Machine, app: &dyn Application| -> f64 {
        (0..4)
            .map(|_| m.run(app).dynamic_energy_joules)
            .sum::<f64>()
            / 4.0
    };
    let ea = avg(&mut machine, &a);
    let eb = avg(&mut machine, &b);
    let eab = avg(&mut machine, &CompoundApp::pair(a, b));
    let rel = ((ea + eb) - eab).abs() / (ea + eb);
    assert!(rel < 0.03, "{ea} + {eb} vs {eab} (rel {rel})");
}

#[test]
fn schedule_of_mixed_subset_is_valid() {
    for arch in [MicroArch::Haswell, MicroArch::Skylake] {
        let catalog = EventCatalog::for_micro_arch(arch);
        let ids: Vec<EventId> = (0..25).map(|i| EventId((i * 13) % catalog.len())).collect();
        let groups = schedule(&catalog, &ids).unwrap();
        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            assert!(!group.events.is_empty());
            assert!(group.events.len() <= PROGRAMMABLE_COUNTERS);
            for &id in &group.events {
                assert!(seen.insert(id), "{id} scheduled twice");
                assert!(
                    group.events.len() <= catalog.event(id).constraint.max_group_size(),
                    "{id} group-size violation"
                );
            }
        }
        for &id in &ids {
            let fixed = catalog.event(id).constraint == CounterConstraint::Fixed;
            assert!(fixed || seen.contains(&id), "{id} missing from schedule");
        }
    }
}

#[test]
fn nnls_fit_is_nonnegative_with_zero_intercept() {
    let rows: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            let t = i as f64;
            vec![t, (t * 1.7) % 11.0 - 5.0, 30.0 - t]
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| -3.0 * r[0] + 0.3 * r[1] - 0.7 * r[2])
        .collect();
    let mut lr = LinearRegression::paper_constrained();
    lr.fit(&rows, &y).unwrap();
    assert_eq!(lr.intercept(), 0.0);
    for &c in lr.coefficients() {
        assert!(c >= 0.0, "negative coefficient {c}");
    }
}

#[test]
fn mid_ranks_sum_to_triangular_number() {
    let xs = vec![5.0, 5.0, -1.0, 3.25, 5.0, 0.0, 3.25];
    let n = xs.len() as f64;
    let sum: f64 = mid_ranks(&xs).iter().sum();
    assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
}

#[test]
fn self_composition_doubles_committed_counts() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 97);
    let app = sample_app("smoke-double", 0.4);
    let id = machine.catalog().id("MEM_INST_RETIRED_ALL_STORES").unwrap();
    let solo: f64 = (0..4).map(|_| machine.run(&app).count(id)).sum::<f64>() / 4.0;
    let twice = CompoundApp::pair(app.clone(), app);
    let double: f64 = (0..4).map(|_| machine.run(&twice).count(id)).sum::<f64>() / 4.0;
    let rel = (double - 2.0 * solo).abs() / (2.0 * solo);
    assert!(rel < 0.03, "solo {solo}, composed {double} (rel {rel})");
}

#[test]
fn runs_are_physical_on_both_platforms() {
    for (spec, seed) in [
        (PlatformSpec::intel_haswell(), 5u64),
        (PlatformSpec::intel_skylake(), 6),
    ] {
        let mut machine = Machine::new(spec, seed);
        let record = machine.run(&sample_app("smoke-phys", 0.3));
        assert!(record.duration_s.is_finite() && record.duration_s > 0.0);
        assert!(record.dynamic_energy_joules.is_finite() && record.dynamic_energy_joules >= 0.0);
        for (i, &c) in record.counts.iter().enumerate() {
            assert!(c.is_finite() && c >= 0.0, "event {i}: {c}");
        }
        for p in &record.phase_powers {
            assert!(p.dynamic_watts.is_finite() && p.dynamic_watts >= 0.0);
            assert!(
                p.dynamic_watts <= machine.spec().max_dynamic_watts() * 1.3,
                "{} W exceeds budget",
                p.dynamic_watts
            );
        }
    }
}

#[test]
fn equation_1_is_symmetric_scale_invariant_and_exact_on_additive_triples() {
    use pmca_additivity::AdditivityTest;
    let (b1, b2, c) = (3.2e9, 1.1e9, 5.0e9);
    let e = AdditivityTest::equation_1_error_pct(b1, b2, c);
    let e_swapped = AdditivityTest::equation_1_error_pct(b2, b1, c);
    assert!((e - e_swapped).abs() < 1e-9 * e.max(1.0));
    let e_scaled = AdditivityTest::equation_1_error_pct(b1 * 250.0, b2 * 250.0, c * 250.0);
    assert!(
        (e - e_scaled).abs() < 1e-6 * e.max(1.0),
        "{e} vs {e_scaled}"
    );
    assert!(AdditivityTest::equation_1_error_pct(b1, b2, b1 + b2).abs() < 1e-9);
}

#[test]
fn multiplexer_output_is_well_formed() {
    let mut machine = Machine::new(PlatformSpec::intel_skylake(), 13);
    let app = sample_app("smoke-mux", 0.25);
    let all = machine.catalog().all_ids();
    let ids: Vec<EventId> = (0..9).map(|i| all[(i * 37 + 13) % all.len()]).collect();
    let before = machine.runs_executed();
    let pmcs = Multiplexer::default()
        .collect(&mut machine, &app, &ids)
        .unwrap();
    assert_eq!(machine.runs_executed() - before, 1);
    let unique: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(pmcs.values.len(), unique.len());
    for (&id, &v) in &pmcs.values {
        assert!(v.is_finite() && v >= 0.0, "{id}: {v}");
    }
}
